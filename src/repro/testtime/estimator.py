"""Sweep generators behind Figs. 17-24 (Appendix A).

For RowHammer (tAggOn = tRAS) and RowPress (tAggOn = 7.8 us) the paper
plots testing time and energy for a single RDT measurement, for 1K and for
100K measurements, sweeping hammer counts, numbers of victim rows, and
numbers of simultaneously tested banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dram.timing import DDR5_8800, TimingParams
from repro.errors import ConfigurationError
from repro.testtime.energy import EnergyModel
from repro.testtime.schedule import multi_bank_schedule, single_bank_schedule
from repro.units import ns_to_days, ns_to_hours, ns_to_ms, ns_to_seconds

#: Sweep axes used throughout the Appendix A figures.
HAMMER_COUNTS = (1_000, 2_000, 4_000, 8_000, 16_000)
BANK_COUNTS = (1, 2, 4, 8, 16)
ROW_COUNTS = (1, 1_024, 65_536, 131_072, 262_144)

#: The RowPress on-time of Figs. 21-24 (one tREFI).
ROWPRESS_T_AGG_ON = 7_800.0


@dataclass(frozen=True)
class CostPoint:
    """One bar of an Appendix A figure."""

    hammer_count: int
    n_banks: int
    n_rows: int
    n_measurements: int
    time_ns: float
    energy_j: float

    @property
    def time_ms(self) -> float:
        return ns_to_ms(self.time_ns)

    @property
    def time_s(self) -> float:
        return ns_to_seconds(self.time_ns)

    @property
    def time_hours(self) -> float:
        return ns_to_hours(self.time_ns)

    @property
    def time_days(self) -> float:
        return ns_to_days(self.time_ns)


class TestTimeEstimator:
    """Computes RDT testing cost for arbitrary sweep points."""

    def __init__(
        self,
        timing: TimingParams = DDR5_8800,
        energy: "EnergyModel | None" = None,
    ):
        self.timing = timing
        self.energy = energy or EnergyModel()

    def measurement_cost(
        self,
        hammer_count: int,
        t_agg_on: float,
        n_banks: int = 1,
        n_rows: int = 1,
        n_measurements: int = 1,
    ) -> CostPoint:
        """Cost of measuring ``n_rows`` rows ``n_measurements`` times each.

        Banks overlap (Table 5); rows within a bank are sequential. With
        ``n_banks`` tested simultaneously, each schedule covers one victim
        row addressed in every bank, so the row axis shrinks by the bank
        count, exactly the parallelism of the paper's estimates.
        """
        if n_rows < 1 or n_measurements < 1:
            raise ConfigurationError("rows and measurements must be >= 1")
        if n_banks == 1:
            schedule = single_bank_schedule(hammer_count, t_agg_on, self.timing)
        else:
            schedule = multi_bank_schedule(
                hammer_count, t_agg_on, n_banks, self.timing
            )
        t_on = max(t_agg_on, self.timing.tRAS)
        row_open_ns = 2.0 * hammer_count * t_on
        one = schedule.total_ns
        one_energy = self.energy.schedule_energy_j(schedule, row_open_ns)
        sequential_rounds = -(-n_rows // n_banks)  # ceil division
        repeats = sequential_rounds * n_measurements
        return CostPoint(
            hammer_count=hammer_count,
            n_banks=n_banks,
            n_rows=n_rows,
            n_measurements=n_measurements,
            time_ns=one * repeats,
            energy_j=one_energy * repeats,
        )

    def adaptive_cost(
        self,
        hammer_count: int,
        t_agg_on: float,
        trials_per_row: Sequence[int],
        n_banks: int = 1,
    ) -> CostPoint:
        """Cost of an adaptive campaign priced from its trial accounting.

        The exhaustive protocol repeats one fixed schedule ``n_rows x
        n_measurements`` times; the adaptive schedule
        (:mod:`repro.core.adaptive`) instead spends a *per-row* trial
        count discovered at run time — pass
        :meth:`AdaptiveResult.trials_per_row()
        <repro.core.adaptive.AdaptiveResult.trials_per_row>` here to price
        Tables 4-6 for the adaptive family. Zero-trial rows (budget-starved
        before their first probe) are legal and cost nothing. Bank
        parallelism applies to the *total* trial count: hardware packs
        trials of different rows into simultaneous per-bank schedules, so
        the sequential rounds are ``ceil(total_trials / n_banks)``.
        """
        trials = [int(count) for count in trials_per_row]
        if any(count < 0 for count in trials):
            raise ConfigurationError("per-row trial counts must be >= 0")
        if n_banks < 1:
            raise ConfigurationError("bank count must be >= 1")
        total = sum(trials)
        if n_banks == 1:
            schedule = single_bank_schedule(hammer_count, t_agg_on, self.timing)
        else:
            schedule = multi_bank_schedule(
                hammer_count, t_agg_on, n_banks, self.timing
            )
        t_on = max(t_agg_on, self.timing.tRAS)
        row_open_ns = 2.0 * hammer_count * t_on
        one = schedule.total_ns
        one_energy = self.energy.schedule_energy_j(schedule, row_open_ns)
        rounds = -(-total // n_banks)  # ceil division; 0 when no trials
        return CostPoint(
            hammer_count=hammer_count,
            n_banks=n_banks,
            n_rows=len(trials),
            n_measurements=total,
            time_ns=one * rounds,
            energy_j=one_energy * rounds,
        )

    # ------------------------------------------------------------------
    # Figure sweeps
    # ------------------------------------------------------------------

    def single_measurement_sweep(
        self,
        t_agg_on: float,
        hammer_counts: Sequence[int] = HAMMER_COUNTS,
        bank_counts: Sequence[int] = BANK_COUNTS,
    ) -> List[CostPoint]:
        """Figs. 17 / 21: one measurement, hammer counts x bank counts."""
        return [
            self.measurement_cost(hammers, t_agg_on, n_banks=banks)
            for hammers in hammer_counts
            for banks in bank_counts
        ]

    def row_sweep(
        self,
        t_agg_on: float,
        hammer_counts: Sequence[int] = HAMMER_COUNTS,
        row_counts: Sequence[int] = ROW_COUNTS,
    ) -> List[CostPoint]:
        """Figs. 18 / 22: one measurement of many rows in a single bank."""
        return [
            self.measurement_cost(hammers, t_agg_on, n_rows=rows)
            for hammers in hammer_counts
            for rows in row_counts
        ]

    def campaign_sweep(
        self,
        t_agg_on: float,
        n_measurements: int,
        hammer_count: int = 1_000,
        row_counts: Sequence[int] = ROW_COUNTS,
        bank_counts: Sequence[int] = BANK_COUNTS,
    ) -> List[CostPoint]:
        """Figs. 19-20 / 23-24: 1K or 100K measurements across rows x banks."""
        return [
            self.measurement_cost(
                hammer_count,
                t_agg_on,
                n_banks=banks,
                n_rows=rows,
                n_measurements=n_measurements,
            )
            for rows in row_counts
            for banks in bank_counts
        ]

    # ------------------------------------------------------------------
    # Headline numbers quoted in the Appendix A summary
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Tuple[float, float]]:
        """(days, joules) for the four headline scenarios of Appendix A."""
        chip_rows = 32 * 262_144  # 32 banks of 256K rows
        scenarios = {
            "rowhammer_100k": self.measurement_cost(
                1_000, self.timing.tRAS, n_banks=16, n_rows=chip_rows,
                n_measurements=100_000,
            ),
            "rowhammer_1k": self.measurement_cost(
                1_000, self.timing.tRAS, n_banks=16, n_rows=chip_rows,
                n_measurements=1_000,
            ),
            "rowpress_100k": self.measurement_cost(
                1_000, ROWPRESS_T_AGG_ON, n_banks=16, n_rows=chip_rows,
                n_measurements=100_000,
            ),
            "rowpress_1k": self.measurement_cost(
                1_000, ROWPRESS_T_AGG_ON, n_banks=16, n_rows=chip_rows,
                n_measurements=1_000,
            ),
        }
        return {
            key: (point.time_days, point.energy_j)
            for key, point in scenarios.items()
        }
