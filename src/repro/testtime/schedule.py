"""Command schedules for one RDT measurement (paper Tables 4 and 5).

A measurement = initialize victim and both aggressors (full-row writes),
hammer double-sided, read the victim back. Table 4 schedules it in one bank;
Table 5 overlaps up to 16 banks, limited by tRRD_S for activations and
tCCD_S for column commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dram.timing import DDR5_8800, TimingParams
from repro.errors import ConfigurationError

#: Column commands per full-row access (Appendix A uses 128).
COLUMNS_PER_ROW = 128


@dataclass(frozen=True)
class SchedulePhase:
    """One row of Tables 4/5: a command, its pacing, and its count."""

    command: str
    pacing: str  # the timing parameter that paces it, for reporting
    count: int
    duration_ns: float


@dataclass
class MeasurementSchedule:
    """A fully paced command schedule for one RDT measurement."""

    name: str
    phases: List[SchedulePhase] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        return sum(phase.duration_ns for phase in self.phases)

    def command_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for phase in self.phases:
            counts[phase.command] = counts.get(phase.command, 0) + phase.count
        return counts

    def as_table(self) -> List[Tuple[str, str, int, float]]:
        """Rows shaped like the paper's Tables 4/5 (plus duration)."""
        return [
            (phase.command, phase.pacing, phase.count, phase.duration_ns)
            for phase in self.phases
        ]


def _row_write_phases(
    timing: TimingParams, label: str
) -> List[SchedulePhase]:
    """ACT + 128 writes + PRE for one row (Table 4's per-row block)."""
    return [
        SchedulePhase("ACT", "tRCD", 1, timing.tRCD),
        SchedulePhase(
            "WRITE", "tCCD_L_WR", COLUMNS_PER_ROW - 1,
            (COLUMNS_PER_ROW - 1) * timing.tCCD_L_WR,
        ),
        SchedulePhase("WRITE", "tWR", 1, timing.tWR),
        SchedulePhase("PRE", "tRP", 1, timing.tRP),
    ]


def single_bank_schedule(
    hammer_count: int,
    t_agg_on: float,
    timing: TimingParams = DDR5_8800,
) -> MeasurementSchedule:
    """Table 4: one RDT measurement for one victim row in one bank."""
    if hammer_count < 0:
        raise ConfigurationError("hammer count must be >= 0")
    t_on = max(t_agg_on, timing.tRAS)
    schedule = MeasurementSchedule(name="single-bank")
    for label in ("victim", "aggressor1", "aggressor2"):
        schedule.phases.extend(_row_write_phases(timing, label))
    # Hammer loop: each hammer holds each aggressor open t_on, then tRP.
    schedule.phases.append(
        SchedulePhase("ACT+PRE", "tAggOn+tRP", 2 * hammer_count,
                      2 * hammer_count * (t_on + timing.tRP))
    )
    # Victim readback.
    schedule.phases.append(SchedulePhase("ACT", "tRCD", 1, timing.tRCD))
    schedule.phases.append(
        SchedulePhase("READ", "tCCD_L", COLUMNS_PER_ROW - 1,
                      (COLUMNS_PER_ROW - 1) * timing.tCCD_L)
    )
    schedule.phases.append(SchedulePhase("READ", "tRTP", 1, timing.tRTP))
    return schedule


def multi_bank_schedule(
    hammer_count: int,
    t_agg_on: float,
    n_banks: int = 16,
    timing: TimingParams = DDR5_8800,
) -> MeasurementSchedule:
    """Table 5: one RDT measurement per bank, overlapped across banks.

    Activations across bank groups are paced by tRRD_S and column commands
    by tCCD_S, so initializing N banks' victims costs N ACTs at tRRD_S
    pitch plus N x 127 writes at tCCD_S pitch. During the hammer loop each
    round's N activations take max(tAggOn, tRRD_S * N) before the shared
    precharge, exactly as Table 5 lists.
    """
    if n_banks < 1:
        raise ConfigurationError("need at least one bank")
    if hammer_count < 0:
        raise ConfigurationError("hammer count must be >= 0")
    t_on = max(t_agg_on, timing.tRAS)
    schedule = MeasurementSchedule(name=f"multi-bank-{n_banks}")
    writes = n_banks * (COLUMNS_PER_ROW - 1)
    for label in ("victim", "aggressor1", "aggressor2"):
        schedule.phases.extend(
            [
                SchedulePhase("ACT", "tRRD_S", n_banks, n_banks * timing.tRRD_S),
                SchedulePhase("WRITE", "tCCD_S", writes, writes * timing.tCCD_S),
                SchedulePhase("WRITE", "tWR", 1, timing.tWR),
                SchedulePhase("PRE", "tRP", 1, timing.tRP),
            ]
        )
    round_on = max(t_on, timing.tRRD_S * n_banks)
    schedule.phases.append(
        SchedulePhase(
            "ACT+PRE", "max(tAggOn,tRRD_S*banks)+tRP", 2 * hammer_count * n_banks,
            2 * hammer_count * (round_on + timing.tRP),
        )
    )
    reads = n_banks * (COLUMNS_PER_ROW - 1)
    schedule.phases.append(
        SchedulePhase("ACT", "tRRD_S", n_banks, n_banks * timing.tRRD_S)
    )
    schedule.phases.append(
        SchedulePhase("READ", "tCCD_S", reads, reads * timing.tCCD_S)
    )
    schedule.phases.append(SchedulePhase("READ", "tRTP", 1, timing.tRTP))
    return schedule
