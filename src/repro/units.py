"""Time, energy, and size units.

All simulator-internal times are kept in **nanoseconds** as floats, matching
the resolution of JEDEC timing parameters (Table 6 of the paper). These
helpers exist so call sites read like the paper ("tREFI is 7.8 us") instead
of carrying raw conversion factors around.
"""

from __future__ import annotations

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0


def us(value: float) -> float:
    """Convert microseconds to nanoseconds."""
    return value * NS_PER_US


def ms(value: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return value * NS_PER_MS


def seconds(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value * NS_PER_S


def ns_to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / NS_PER_US


def ns_to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / NS_PER_MS


def ns_to_seconds(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns / NS_PER_S


def ns_to_hours(value_ns: float) -> float:
    """Convert nanoseconds to hours."""
    return value_ns / NS_PER_S / 3600.0


def ns_to_days(value_ns: float) -> float:
    """Convert nanoseconds to days."""
    return value_ns / NS_PER_S / 86_400.0


KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
