"""Tests for the shared figure drivers."""

import pytest

from repro.analysis.figures import (
    campaigns_for,
    foundational_victim_series,
    module_campaign,
    victim_threshold_for,
)
from repro.chips import spec


def test_victim_threshold_adapts_to_hbm():
    assert victim_threshold_for(spec("M1")) == 40_000.0
    assert victim_threshold_for(spec("Chip3")) > 40_000.0


def test_foundational_series_reproducible():
    a = foundational_victim_series("M1", 300)
    b = foundational_victim_series("M1", 300)
    assert a.row == b.row
    assert a.min == b.min and a.max == b.max


def test_module_campaign_small():
    result = module_campaign(
        "H2", rows_per_block=2, n_measurements=200,
    )
    # 6 rows x 4 patterns.
    assert len(result) == 24
    assert len(result.rows()) == 6


def test_campaigns_for_multiple_modules():
    results = campaigns_for(["M0", "S4"], rows_per_block=1, n_measurements=100)
    assert set(results) == {"M0", "S4"}


def test_cross_protocol_campaigns_cover_every_protocol():
    from repro.analysis.figures import (
        PROTOCOL_REPRESENTATIVES,
        cross_protocol_campaigns,
    )
    from repro.errors import ConfigurationError

    results = cross_protocol_campaigns(rows_per_block=1, n_measurements=100)
    assert set(results) == {"DDR4", "DDR5", "HBM2"}
    for protocol, result in results.items():
        assert result.module_id == PROTOCOL_REPRESENTATIVES[protocol]
        assert spec(result.module_id).protocol == protocol
        assert len(result) > 0
    with pytest.raises(ConfigurationError):
        cross_protocol_campaigns(("LPDDR4",))
