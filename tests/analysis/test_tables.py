"""Tests for ASCII table rendering."""

from repro.analysis.tables import format_table


def test_alignment_and_title():
    text = format_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", 123456.0]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
    # Columns align: every row has the same position for column 2.
    assert lines[1].index("value") == lines[3].index("1.5")


def test_number_formats():
    text = format_table(["x"], [[0.00001], [12345678.0], [0], [True]])
    assert "1e-05" in text
    assert "1.23e+07" in text
    assert "True" in text
