"""Tests for the test-program assembly format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bender.assembly import assemble, disassemble
from repro.bender.interpreter import Interpreter
from repro.bender.isa import Act, Hammer, Pre, ReadRow, Wait, WriteRow
from repro.bender.program import ProgramBuilder
from repro.errors import ProgramError
from tests.conftest import make_module


EXAMPLE = """
# initialize and hammer
ACT 0 100
WRITE 0 100 0x55
PRE 0
HAMMER 0 99,101 500 35.0
ACT 0 100
READ 0 100 victim
PRE 0 MIN_ON 100
WAIT 12.5
"""


def test_assemble_example():
    program = assemble(EXAMPLE, name="demo")
    kinds = [type(i).__name__ for i in program]
    assert kinds == [
        "Act", "WriteRow", "Pre", "Hammer", "Act", "ReadRow", "Pre", "Wait",
    ]
    hammer = program.instructions[3]
    assert hammer.rows == (99, 101)
    assert hammer.count == 500
    pre = program.instructions[6]
    assert pre.min_on_ns == 100.0


def test_assembled_program_executes():
    module = make_module()
    module.disable_interference_sources()
    interp = Interpreter(module)
    result = interp.run(assemble(EXAMPLE))
    assert "victim" in result.reads
    assert result.count("ACT") == 2 + 1000


def test_roundtrip_builder_program():
    builder = ProgramBuilder("rt")
    builder.write_row(0, 5, 0xA5).hammer(0, [4, 6], 10, 35.0)
    builder.read_row(0, 5, "v").wait(3.0).pre(0, min_on_ns=50.0)
    program = builder.build()
    text = disassemble(program)
    reassembled = assemble(text, name="rt")
    assert reassembled.instructions == program.instructions


@pytest.mark.parametrize(
    "bad",
    [
        "ACT 0",                # missing row
        "PRE",                  # missing bank
        "PRE 0 MAX_ON 5",       # bad keyword
        "WRITE 0 5",            # missing fill
        "READ 0 5",             # missing tag
        "WAIT",                 # missing duration
        "HAMMER 0 1,2 10",      # missing on-time
        "FROB 1 2 3",           # unknown opcode
        "ACT zero 5",           # non-integer
    ],
)
def test_malformed_lines_rejected(bad):
    with pytest.raises(ProgramError):
        assemble(bad)


def test_disassemble_rejects_binary_image():
    program = ProgramBuilder("x").build()
    program.instructions.append(WriteRow(0, 5, fill=bytes(16)))
    with pytest.raises(ProgramError):
        disassemble(program)


@given(
    instructions=st.lists(
        st.one_of(
            st.builds(
                Act,
                bank=st.integers(0, 3),
                row=st.integers(0, 1000),
            ),
            st.builds(
                Pre,
                bank=st.integers(0, 3),
                min_on_ns=st.one_of(
                    st.none(), st.floats(min_value=1.0, max_value=1e5)
                ),
            ),
            st.builds(
                WriteRow,
                bank=st.integers(0, 3),
                row=st.integers(0, 1000),
                fill=st.integers(0, 255),
            ),
            st.builds(
                Wait, duration_ns=st.floats(min_value=0.0, max_value=1e6)
            ),
            st.builds(
                Hammer,
                bank=st.integers(0, 3),
                rows=st.lists(
                    st.integers(0, 1000), min_size=1, max_size=3
                ).map(tuple),
                count=st.integers(0, 10_000),
                t_agg_on=st.floats(min_value=1.0, max_value=1e5),
            ),
        ),
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(instructions):
    program = ProgramBuilder("prop").build()
    program.instructions.extend(instructions)
    assert assemble(disassemble(program)).instructions == list(instructions)
