"""Certified checked replays must agree with the full per-command walk.

With ``VRD_TIMING_CHECK=1``, a compiled trial's first replay feeds every
command through the :class:`~repro.dram.checker.TimingChecker`; later
replays of the same rigid plan are validated through junction checks and
logged as :class:`~repro.dram.commands.RepeatBlock` entries. The ground
truth is the fully expanded stream: re-checking every individual command
of the recorded log with a fresh checker must reach the same verdict and
the same command count.
"""

import pytest

from repro.bender.host import DramBender
from repro.bender.interpreter import CHECKED_RULES
from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0
from repro.dram.checker import TimingChecker
from repro.dram.commands import (
    Command,
    CommandKind,
    CommandLog,
    RepeatBlock,
)
from repro.errors import ConfigurationError
from tests.conftest import make_module


def _checked_bender(monkeypatch, **kwargs):
    monkeypatch.setenv("VRD_TIMING_CHECK", "1")
    module = make_module(**kwargs)
    module.disable_interference_sources()
    return DramBender(module, init_radius=4)


def _run_sweep(bender, counts):
    module = bender.module
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    for count in counts:
        bender.run_trial(
            0, 40, config.pattern, count, config.t_agg_on_ns, compiled=True
        )


def test_certified_replays_match_full_walk(monkeypatch):
    bender = _checked_bender(monkeypatch)
    _run_sweep(bender, [50, 120, 80, 0, 200, 200])
    log = bender.interpreter.log

    # The fast path must actually engage after the first full-walk replay.
    repeats = [e for e in log.entries if isinstance(e, RepeatBlock)]
    assert repeats, "no certified replays were recorded"

    # Ground truth: expand every entry (repeats included) and re-check
    # each command individually with a fresh checker over the same rules.
    oracle = TimingChecker(
        timing=bender.module.timing,
        geometry=bender.module.geometry,
        rule_names=CHECKED_RULES,
    )
    for command in log.iter_commands():
        violations = oracle.feed(command)
        assert not violations, violations
    assert oracle.report.n_commands == log.n_commands
    assert bender.interpreter._checker.report.n_commands == log.n_commands


def test_certified_log_round_trips(monkeypatch):
    bender = _checked_bender(monkeypatch)
    _run_sweep(bender, [60, 90, 90])
    log = bender.interpreter.log
    assert any(isinstance(e, RepeatBlock) for e in log.entries)

    clone = CommandLog.from_payload(log.to_payload())
    assert clone.n_commands == log.n_commands
    original = [(c.kind, c.issued_at, c.bank, c.row) for c in log.iter_commands()]
    restored = [(c.kind, c.issued_at, c.bank, c.row) for c in clone.iter_commands()]
    assert restored == original


def test_repeat_block_expansion_shifts_times():
    log = CommandLog()
    log.command(CommandKind.ACT, 0.0, bank=0, row=3)
    log.command(CommandKind.PRE, 35.0, bank=0)
    log.append(RepeatBlock(0, 2, 100.0, 2))
    times = [c.issued_at for c in log.iter_commands()]
    assert times == [0.0, 35.0, 100.0, 135.0]
    assert log.n_commands == 4


def test_feed_rejects_repeat_blocks():
    checker = TimingChecker(timing=make_module().timing)
    with pytest.raises(ConfigurationError):
        checker.feed(RepeatBlock(0, 1, 10.0, 1))
