"""Equality tests for the Bender trace compiler.

The scalar :class:`~repro.bender.interpreter.Interpreter` is the
specification; :mod:`repro.bender.compiler` must reproduce it bit for bit —
same reads, same ``elapsed_ns``, same command counts, same device state, and
the same exception classes on malformed programs (raised up front at
compile time instead of mid-run).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bender.compiler import (
    CompiledProgram,
    compile_program,
    compile_trial,
)
from repro.bender.host import DramBender
from repro.bender.interpreter import Interpreter
from repro.bender.isa import ReadRow
from repro.bender.program import Program, ProgramBuilder
from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0, ROWSTRIPE0
from repro.core.rdt import FastRdtMeter, HammerSweep, RdtMeter
from repro.errors import CommandSequenceError, ReproError
from tests.conftest import make_module


def fresh_module(seed=1234, **kwargs):
    module = make_module(seed=seed, **kwargs)
    module.disable_interference_sources()
    return module


def snapshot(interpreter):
    """Observable interpreter + device state after a run."""
    module = interpreter.module
    state = {"now": interpreter.now, "counts": dict(interpreter.total_counts)}
    for index in range(module.geometry.n_banks):
        bank = module.bank(index)
        state[index] = (
            bank.open_row,
            bank.opened_at,
            bank.last_activate,
            bank.last_precharge,
            bank.last_write_end,
            bank.activation_count,
            sorted((row, bytes(data)) for row, data in bank._storage.items()),
        )
    return state


def run_both(program, seed=1234):
    """Run ``program`` scalar and compiled on twin modules.

    Returns ``(outcome, scalar_state, compiled_state)`` where outcome is
    ``("ok", scalar_result, compiled_result)`` or ``("err", exc_type)``
    with both routes agreeing on the exception class.
    """
    scalar_interp = Interpreter(fresh_module(seed=seed))
    compiled_interp = Interpreter(fresh_module(seed=seed))

    scalar_exc = scalar_result = None
    try:
        scalar_result = scalar_interp.run(program)
    except ReproError as exc:
        scalar_exc = exc

    compiled_exc = compiled_result = None
    try:
        plan = compile_program(program, compiled_interp.module)
        compiled_result = plan.run(compiled_interp)
    except ReproError as exc:
        compiled_exc = exc

    if scalar_exc is not None or compiled_exc is not None:
        assert type(scalar_exc) is type(compiled_exc), (
            f"scalar raised {scalar_exc!r}, compiled raised {compiled_exc!r}"
        )
        return ("err", type(scalar_exc)), None, None
    return (
        ("ok", scalar_result, compiled_result),
        snapshot(scalar_interp),
        snapshot(compiled_interp),
    )


def assert_results_equal(scalar, compiled):
    assert compiled.elapsed_ns == scalar.elapsed_ns
    assert compiled.command_counts == scalar.command_counts
    assert sorted(compiled.reads) == sorted(scalar.reads)
    for tag, data in scalar.reads.items():
        np.testing.assert_array_equal(compiled.reads[tag], data)


# ---------------------------------------------------------------------------
# Randomized property equality
# ---------------------------------------------------------------------------

# Builder-level operations. write/read idioms emit valid ACT/op/PRE bursts;
# raw act/pre/read ops inject the interpreter's error paths (ACT while open,
# ReadRow with no open row, row mismatches); a tiny tag alphabet makes
# duplicate read tags common.
ops = st.one_of(
    st.tuples(st.just("act"), st.integers(0, 1), st.integers(0, 63)),
    st.tuples(st.just("pre"), st.integers(0, 1),
              st.one_of(st.none(), st.floats(35.0, 500.0))),
    st.tuples(st.just("wait"), st.floats(0.0, 1e5)),
    st.tuples(st.just("write"), st.integers(0, 1), st.integers(0, 63),
              st.integers(0, 255)),
    st.tuples(st.just("read"), st.integers(0, 1), st.integers(0, 63),
              st.sampled_from(["a", "b", "c", "d"])),
    st.tuples(st.just("raw_read"), st.integers(0, 1), st.integers(0, 63),
              st.sampled_from(["a", "b", "c", "d"])),
    st.tuples(st.just("hammer"), st.integers(0, 1),
              st.lists(st.integers(0, 63), min_size=1, max_size=2),
              st.integers(0, 500), st.floats(35.0, 1e3)),
)


def build(sequence):
    builder = ProgramBuilder("prop")
    for op in sequence:
        kind = op[0]
        if kind == "act":
            builder.act(op[1], op[2])
        elif kind == "pre":
            builder.pre(op[1], op[2])
        elif kind == "wait":
            builder.wait(op[1])
        elif kind == "write":
            builder.write_row(op[1], op[2], op[3])
        elif kind == "read":
            builder.read_row(op[1], op[2], op[3])
        elif kind == "raw_read":
            builder._program.instructions.append(ReadRow(op[1], op[2], op[3]))
        elif kind == "hammer":
            builder.hammer(op[1], op[2], op[3], op[4])
    return builder.build()


@given(sequence=st.lists(ops, max_size=16))
@settings(max_examples=150, deadline=None)
def test_compiled_matches_interpreter_on_random_programs(sequence):
    program = build(sequence)
    outcome, scalar_state, compiled_state = run_both(program)
    if outcome[0] == "ok":
        assert_results_equal(outcome[1], outcome[2])
        assert compiled_state == scalar_state


@given(sequence=st.lists(ops, max_size=16), seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_compiled_matches_interpreter_across_seeds(sequence, seed):
    program = build(sequence)
    outcome, scalar_state, compiled_state = run_both(program, seed=seed)
    if outcome[0] == "ok":
        assert_results_equal(outcome[1], outcome[2])
        assert compiled_state == scalar_state


def test_command_estimate_matches_executed_counts():
    """``Program.command_estimate`` equals the executed command totals for
    builder-generated sweep programs (Appendix A accounting)."""
    module = fresh_module()
    columns = module.geometry.columns_per_row
    for hammers in (0, 1, 777):
        builder = ProgramBuilder("sweep")
        builder.initialize_neighborhood(
            0, 30, [29, 31], CHECKERED0, module.geometry.n_rows, radius=3
        )
        builder.double_sided_round(0, [29, 31], hammers, module.timing.tRAS)
        builder.read_row(0, 30, "victim")
        program = builder.build()

        result = Interpreter(fresh_module()).run(program)
        assert sum(result.command_counts.values()) == program.command_estimate(
            columns
        )

        plan = compile_program(program, module)
        compiled = plan.run(Interpreter(module))
        assert sum(compiled.command_counts.values()) == program.command_estimate(
            columns
        )
        module = fresh_module()


# ---------------------------------------------------------------------------
# Error paths surfaced at compile time
# ---------------------------------------------------------------------------


def test_duplicate_read_tags_raise_like_interpreter():
    builder = ProgramBuilder("dup")
    builder.write_row(0, 5, 0xAA)
    builder.read_row(0, 5, "same").read_row(0, 5, "same")
    outcome, _, _ = run_both(builder.build())
    assert outcome[0] == "err"


def test_read_without_open_row_raises_like_interpreter():
    program = Program(name="no-open", instructions=[ReadRow(0, 5, "t")])
    outcome, _, _ = run_both(program)
    assert outcome[0] == "err"


def test_compiled_requires_closed_bank_at_entry():
    module = fresh_module()
    interpreter = Interpreter(module)
    program = ProgramBuilder("p").write_row(0, 5, 0xAA).build()
    plan = compile_program(program, module)
    # Open the touched bank behind the plan's back.
    module.activate(0, 9, interpreter.now + 10.0)
    with pytest.raises(CommandSequenceError):
        plan.run(interpreter)


def test_compiled_rejects_foreign_module():
    from repro.errors import ProgramError

    program = ProgramBuilder("p").write_row(0, 5, 0xAA).build()
    plan = compile_program(program, fresh_module())
    with pytest.raises(ProgramError):
        plan.run(Interpreter(fresh_module()))


# ---------------------------------------------------------------------------
# Trial plans and the faithful meter
# ---------------------------------------------------------------------------


def test_compiled_trial_matches_run_trial_over_hammer_range():
    scalar = DramBender(fresh_module())
    compiled = DramBender(fresh_module())
    t_on = scalar.module.timing.tRAS
    for count in (0, 1, 500, 1500, 2500):
        flips_scalar = scalar.run_trial(0, 40, CHECKERED0, count, t_on)
        flips_compiled = compiled.run_trial(
            0, 40, CHECKERED0, count, t_on, compiled=True
        )
        assert flips_compiled == flips_scalar
    assert compiled.interpreter.now == scalar.interpreter.now
    assert dict(compiled.interpreter.total_counts) == dict(
        scalar.interpreter.total_counts
    )


def test_compiled_trial_with_interference_sources_enabled():
    # TRR + ECC stay on: the compiled replay must drive the same TRR
    # sampler decisions and the same on-die ECC view of the flips.
    scalar = DramBender(make_module(seed=77))
    compiled = DramBender(make_module(seed=77))
    t_on = scalar.module.timing.tRAS
    for count in (800, 1600, 2400):
        assert compiled.run_trial(
            0, 52, ROWSTRIPE0, count, t_on, compiled=True
        ) == scalar.run_trial(0, 52, ROWSTRIPE0, count, t_on)
    assert compiled.module._trr.counts == scalar.module._trr.counts


def test_mixed_scalar_and_compiled_trials_share_state():
    scalar = DramBender(fresh_module())
    mixed = DramBender(fresh_module())
    t_on = scalar.module.timing.tRAS
    for index, count in enumerate((300, 900, 1500, 2100)):
        use_compiled = index % 2 == 1
        assert mixed.run_trial(
            0, 44, CHECKERED0, count, t_on, compiled=use_compiled
        ) == scalar.run_trial(0, 44, CHECKERED0, count, t_on)
    assert mixed.interpreter.now == scalar.interpreter.now


def test_rdt_meter_series_compiled_equals_scalar():
    config_of = lambda module: TestConfig(
        CHECKERED0, t_agg_on_ns=module.timing.tRAS
    )
    scalar_bender = DramBender(fresh_module())
    compiled_bender = DramBender(fresh_module())
    sweep = HammerSweep.from_guess(
        FastRdtMeter(fresh_module()).guess_rdt(40, config_of(scalar_bender.module))
    )
    scalar = RdtMeter(scalar_bender).measure_series(
        40, config_of(scalar_bender.module), 12, sweep=sweep
    )
    compiled = RdtMeter(compiled_bender, compiled=True).measure_series(
        40, config_of(compiled_bender.module), 12, sweep=sweep
    )
    np.testing.assert_array_equal(compiled.values, scalar.values)
    assert compiled_bender.interpreter.now == scalar_bender.interpreter.now
