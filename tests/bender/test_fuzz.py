"""Robustness fuzzing: random programs never corrupt the interpreter.

Random instruction sequences — including ones that violate command
sequencing — must either execute or raise a library error
(:class:`~repro.errors.ReproError`); they must never raise foreign
exceptions, move time backwards, or corrupt stored data of untouched rows.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bender.interpreter import Interpreter
from repro.bender.isa import Act, Hammer, Pre, ReadRow, Wait, WriteRow
from repro.bender.program import Program
from repro.errors import ReproError
from tests.conftest import make_module

instructions = st.one_of(
    st.builds(Act, bank=st.integers(0, 1), row=st.integers(0, 63)),
    st.builds(Pre, bank=st.integers(0, 1)),
    st.builds(
        WriteRow,
        bank=st.integers(0, 1),
        row=st.integers(0, 63),
        fill=st.integers(0, 255),
    ),
    st.builds(
        ReadRow,
        bank=st.integers(0, 1),
        row=st.integers(0, 63),
        tag=st.uuids().map(str),
    ),
    st.builds(Wait, duration_ns=st.floats(min_value=0.0, max_value=1e5)),
    st.builds(
        Hammer,
        bank=st.integers(0, 1),
        rows=st.lists(st.integers(0, 63), min_size=1, max_size=2).map(tuple),
        count=st.integers(0, 2000),
        t_agg_on=st.floats(min_value=35.0, max_value=1e4),
    ),
)


@given(sequence=st.lists(instructions, max_size=25))
@settings(max_examples=120, deadline=None)
def test_random_programs_fail_cleanly(sequence):
    module = make_module(seed=99)
    module.disable_interference_sources()
    interpreter = Interpreter(module)

    # A sentinel row the fuzzed program never touches (rows <= 63 only;
    # 200's physical address also stays clear of their blast radius).
    sentinel_data = np.full(module.geometry.row_bytes, 0x3C, dtype=np.uint8)
    t = module.timing
    module.activate(0, 200, 10.0)
    module.write_row(0, 200, sentinel_data, 10.0 + t.tRCD + 100)
    module.precharge(0, 10.0 + t.tRCD + 100 + t.tWR)
    interpreter.now = 10_000.0

    before = interpreter.now
    try:
        result = interpreter.run(Program(name="fuzz", instructions=sequence))
    except ReproError:
        pass  # clean library failure is acceptable
    else:
        assert result.elapsed_ns >= 0
    assert interpreter.now >= before

    # The sentinel row is untouched regardless of what the program did.
    for bank in module.banks:
        if bank.open_row is not None:
            bank.precharge(
                max(interpreter.now, bank.opened_at + t.tRAS,
                    bank.last_write_end + t.tWR) + 1.0
            )
    late = interpreter.now + 1e6
    module.activate(0, 200, late)
    data = module.read_row(0, 200, late + t.tRCD)
    assert np.array_equal(data, sentinel_data)
