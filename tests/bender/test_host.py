"""Tests for the DRAM Bender host API."""

import pytest

from repro.bender.host import DramBender
from repro.bender.temperature import PidTemperatureController
from repro.core.patterns import CHECKERED0
from repro.dram.faults import Condition
from repro.dram.mapping import ScrambledBlockMapping
from repro.dram.module import DramModule
from repro.errors import MeasurementError
from tests.conftest import SMALL_GEOMETRY, make_module


def make_bender(seed=1234, **kwargs):
    module = make_module(seed=seed)
    module.disable_interference_sources()
    return DramBender(module, **kwargs)


def test_prepare_for_characterization():
    module = make_module()
    bender = DramBender(module)
    bender.prepare_for_characterization()
    assert not module.refresh_enabled
    assert not module.mode.ecc_enabled


def test_set_temperature_with_controller():
    bender = make_bender(controller=PidTemperatureController())
    settled = bender.set_temperature(65.0)
    assert abs(settled - 65.0) <= 0.5
    assert bender.module.temperature == settled


def test_set_temperature_room():
    bender = make_bender()
    assert bender.set_temperature(50.0) == 50.0


def test_probe_neighbors_finds_physical_adjacency():
    module = DramModule(
        "SCR",
        geometry=SMALL_GEOMETRY,
        mapping_factory=ScrambledBlockMapping,
        seed=9,
    )
    module.disable_interference_sources()
    bender = DramBender(module)
    row = 40
    flipped = bender.probe_neighbors(0, row)
    mapping = module.bank(0).mapping
    assert sorted(flipped) == sorted(mapping.aggressors_for_victim(row))


def test_discover_adjacency_feeds_aggressors_for():
    module = DramModule(
        "SCR",
        geometry=SMALL_GEOMETRY,
        mapping_factory=ScrambledBlockMapping,
        seed=9,
    )
    module.disable_interference_sources()
    bender = DramBender(module)
    adjacency = bender.discover_adjacency(0, [40])
    assert bender.aggressors_for(0, 40) == adjacency[40]


def test_run_trial_above_and_below_threshold():
    bender = make_bender()
    module = bender.module
    victim = 100
    physical = module.bank(0).mapping.to_physical(victim)
    process = module.fault_model.process(0, physical)
    t_ras = module.timing.tRAS
    bender.begin_measurement(0, victim, CHECKERED0, t_ras)
    threshold = process.current_threshold(Condition("checkered0", t_ras, 50.0))
    assert bender.run_trial(0, victim, CHECKERED0, int(threshold * 0.6), t_ras) == []
    flips = bender.run_trial(0, victim, CHECKERED0, int(threshold * 1.1), t_ras)
    assert flips


def test_trial_advances_testbed_clock():
    bender = make_bender()
    before = bender.elapsed_ns
    bender.run_trial(0, 100, CHECKERED0, 100, bender.module.timing.tRAS)
    assert bender.elapsed_ns > before


def test_trial_time_lower_bound_close_to_actual():
    bender = make_bender()
    t_ras = bender.module.timing.tRAS
    start = bender.elapsed_ns
    bender.run_trial(0, 100, CHECKERED0, 500, t_ras)
    actual = bender.elapsed_ns - start
    analytic = bender.trial_time_ns(500, t_ras)
    assert analytic <= actual * 1.001
    assert actual <= analytic * 1.5


def test_condition_for_floors_on_time():
    bender = make_bender()
    condition = bender.condition_for(CHECKERED0, 1.0)
    assert condition.t_agg_on == bender.module.timing.tRAS
