"""Tests for the program interpreter's scheduling and accounting."""

import numpy as np
import pytest

from repro.bender.interpreter import Interpreter
from repro.bender.program import ProgramBuilder
from repro.errors import ProgramError
from tests.conftest import make_module


def test_write_then_read_roundtrip():
    module = make_module()
    module.disable_interference_sources()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.write_row(0, 5, 0xC3).read_row(0, 5, "out")
    result = interp.run(builder.build())
    assert np.all(result.reads["out"] == 0xC3)
    assert result.elapsed_ns > 0


def test_command_counts():
    module = make_module()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.write_row(0, 5, 0).hammer(0, [4, 6], 25, module.timing.tRAS)
    result = interp.run(builder.build())
    columns = module.geometry.columns_per_row
    assert result.count("WR") == columns
    assert result.count("ACT") == 1 + 50
    assert result.count("PRE") == 1 + 50


def test_hammer_timing_matches_analytic():
    module = make_module()
    t = module.timing
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.hammer(0, [4, 6], 100, t.tRAS)
    result = interp.run(builder.build())
    assert result.elapsed_ns == pytest.approx(100 * 2 * (t.tRAS + t.tRP))


def test_wait_advances_clock():
    module = make_module()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.wait(123.0)
    assert interp.run(builder.build()).elapsed_ns == 123.0


def test_rowpress_min_on_time():
    module = make_module()
    t = module.timing
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.act(0, 5).pre(0, min_on_ns=500.0)
    result = interp.run(builder.build())
    assert result.elapsed_ns >= 500.0


def test_column_without_open_row_rejected():
    module = make_module()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder._program.instructions.append(
        __import__("repro.bender.isa", fromlist=["ReadRow"]).ReadRow(0, 5, "x")
    )
    with pytest.raises(ProgramError):
        interp.run(builder.build())


def test_duplicate_read_tag_rejected():
    module = make_module()
    module.disable_interference_sources()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.read_row(0, 5, "v").read_row(0, 6, "v")
    with pytest.raises(ProgramError):
        interp.run(builder.build())


def test_time_persists_across_runs():
    module = make_module()
    interp = Interpreter(module)
    builder = ProgramBuilder()
    builder.wait(10.0)
    interp.run(builder.build())
    interp.run(builder.build())
    assert interp.now == 20.0
    assert interp.total_counts == {}


def test_issue_refresh_accounting():
    module = make_module()
    interp = Interpreter(module)
    interp.issue_refresh()
    assert interp.now == module.timing.tRFC
    assert interp.total_counts["REF"] == 1
