"""Tests for the Bender ISA and program builder."""

import numpy as np
import pytest

from repro.bender.isa import Hammer, Pre, ReadRow, Wait, WriteRow
from repro.bender.program import ProgramBuilder
from repro.core.patterns import CHECKERED0
from repro.errors import ProgramError


def test_write_row_fill_byte():
    instruction = WriteRow(0, 5, fill=0x3C)
    data = instruction.data(16)
    assert data.shape == (16,)
    assert np.all(data == 0x3C)


def test_write_row_explicit_image():
    payload = bytes(range(16))
    instruction = WriteRow(0, 5, fill=payload)
    assert np.array_equal(instruction.data(16), np.frombuffer(payload, np.uint8))
    with pytest.raises(ProgramError):
        instruction.data(8)


def test_write_row_invalid_fill():
    with pytest.raises(ProgramError):
        WriteRow(0, 5, fill=300).data(16)


def test_wait_rejects_negative():
    with pytest.raises(ProgramError):
        Wait(-1.0)


def test_hammer_validation():
    with pytest.raises(ProgramError):
        Hammer(0, [], 10, 35.0)
    with pytest.raises(ProgramError):
        Hammer(0, [1], -1, 35.0)
    hammer = Hammer(0, [1, 3], 10, 35.0)
    assert hammer.total_activations == 20


def test_builder_idioms_produce_expected_sequence():
    builder = ProgramBuilder("t")
    builder.write_row(0, 5, 0xFF).read_row(0, 5, "v")
    program = builder.build()
    kinds = [type(i).__name__ for i in program]
    assert kinds == ["Act", "WriteRow", "Pre", "Act", "ReadRow", "Pre"]


def test_initialize_neighborhood_rows():
    builder = ProgramBuilder()
    builder.initialize_neighborhood(
        0, victim=100, aggressors=[99, 101], pattern=CHECKERED0,
        n_rows=1024, radius=3,
    )
    writes = [i for i in builder.build() if isinstance(i, WriteRow)]
    rows = {w.row: w.fill for w in writes}
    assert rows[100] == 0x55
    assert rows[99] == rows[101] == 0xAA
    # V +/- [2:3] hold the victim byte (Table 2).
    assert rows[98] == rows[102] == rows[97] == rows[103] == 0x55


def test_initialize_neighborhood_edge_of_bank():
    builder = ProgramBuilder()
    builder.initialize_neighborhood(
        0, victim=0, aggressors=[1], pattern=CHECKERED0, n_rows=1024, radius=2
    )
    writes = [i for i in builder.build() if isinstance(i, WriteRow)]
    assert {w.row for w in writes} == {0, 1, 2}


def test_double_sided_round_rejects_many_aggressors():
    builder = ProgramBuilder()
    with pytest.raises(ProgramError):
        builder.double_sided_round(0, [1, 2, 3], 10, 35.0)


def test_command_estimate():
    builder = ProgramBuilder()
    builder.write_row(0, 5, 0).hammer(0, [4, 6], 10, 35.0).read_row(0, 5, "v")
    estimate = builder.build().command_estimate(columns_per_row=128)
    # ACT+PRE (2) + 128 writes + 40 hammer commands + ACT+PRE (2) + 128 reads
    assert estimate == 2 + 128 + 40 + 2 + 128
