"""Tests for FPGA platform descriptors."""

import pytest

from repro.bender.platform import (
    ALVEO_U200,
    ALVEO_U50,
    XUPVVH,
    Testbed,
    board_for,
)
from repro.errors import ConfigurationError
from tests.conftest import make_module


def test_boards_support_paper_kinds():
    assert "DDR4" in ALVEO_U200.supported_kinds
    assert "HBM2" in ALVEO_U50.supported_kinds
    assert "HBM2" in XUPVVH.supported_kinds


def test_board_for_module():
    assert board_for(make_module()) is ALVEO_U200


def test_testbed_rejects_mismatched_board():
    module = make_module()  # DDR4
    with pytest.raises(ConfigurationError):
        Testbed(board=ALVEO_U50, module=module)


def test_testbed_without_controller_is_room_controlled():
    testbed = Testbed(board=ALVEO_U200, module=make_module())
    assert not testbed.temperature_controlled
