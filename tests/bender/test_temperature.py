"""Tests for the PID temperature controller."""

import pytest

from repro.bender.temperature import PidTemperatureController, ThermalPlant
from repro.errors import ConfigurationError


@pytest.mark.parametrize("target", [50.0, 65.0, 80.0])
def test_settles_within_precision(target):
    controller = PidTemperatureController()
    settled = controller.settle(target)
    # The paper's FT200 holds +/- 0.5 C.
    assert abs(settled - target) <= 0.5


def test_settle_history_converges_monotonically_enough():
    controller = PidTemperatureController()
    controller.settle(80.0)
    tail = controller.history[-30:]
    assert all(abs(temp - 80.0) <= 0.5 for temp in tail)


def test_out_of_authority_rejected():
    controller = PidTemperatureController()
    with pytest.raises(ConfigurationError):
        controller.settle(200.0)
    with pytest.raises(ConfigurationError):
        controller.settle(10.0)  # below ambient: no cooling


def test_retarget_after_settle():
    controller = PidTemperatureController()
    controller.settle(50.0)
    settled = controller.settle(80.0)
    assert abs(settled - 80.0) <= 0.5


def test_plant_relaxes_to_ambient():
    plant = ThermalPlant(ambient_c=25.0, temperature_c=80.0)
    for _ in range(1000):
        plant.step(0.0, 1.0)
    assert plant.temperature_c == pytest.approx(25.0, abs=0.5)


def test_invalid_precision():
    with pytest.raises(ConfigurationError):
        PidTemperatureController(precision_c=0.0)
