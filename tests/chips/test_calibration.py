"""Model-calibration checks against the paper's Table 7 anchors.

These are statistical acceptance tests for the device-model substitution:
the simulated chips must land near the published per-module summary
statistics. Tolerances are loose — the claim is shape, not digits.
"""

import numpy as np
import pytest

from repro.chips import build_module, spec
from repro.core import FastRdtMeter, TestConfig
from repro.core.montecarlo import expected_normalized_min, probability_of_min
from repro.core.patterns import CHECKERED0


def vulnerable_rows(meter, config, count=40, scan=256):
    guesses = sorted((meter.guess_rdt(r, config), r) for r in range(scan))
    return [row for _, row in guesses[:count]]


@pytest.mark.parametrize("module_id", ["M1", "H0", "S0"])
def test_median_expected_normalized_min_near_table7(module_id):
    device = spec(module_id)
    module = build_module(device)
    meter = FastRdtMeter(module)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    values = []
    for row in vulnerable_rows(meter, config):
        series = meter.measure_series(row, config, 1000)
        values.append(expected_normalized_min(series.require_valid(), 1))
    median = float(np.median(values))
    target = device.enorm[1][0]
    # Within ~2 percentage points of the published median: shape, not
    # digits (the median is dominated by which of the ~40 sampled rows
    # drew rare dips).
    assert abs(median - target) < 0.025


def test_min_rdt_probability_matches_finding7():
    """Finding 7: the median row's P(find min | N=1) is about 0.2%, with a
    sizable fraction of rows at or below 0.1%."""
    module = build_module("M1")
    meter = FastRdtMeter(module)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    probabilities = []
    for row in vulnerable_rows(meter, config):
        series = meter.measure_series(row, config, 1000)
        probabilities.append(probability_of_min(series.require_valid(), 1))
    probabilities = np.array(probabilities)
    assert 0.0005 <= np.median(probabilities) <= 0.006
    assert (probabilities <= 0.00105).mean() >= 0.10


def test_rowpress_min_rdt_anchor():
    """Minimum observed RDT drops from tRAS to tREFI roughly by the
    Table 7 ratio."""
    device = spec("H1")
    module = build_module(device)
    meter = FastRdtMeter(module)
    ras = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    refi = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tREFI)
    rows = vulnerable_rows(meter, ras, count=15, scan=128)
    min_ras = min(meter.measure_series(r, ras, 200).min for r in rows)
    min_refi = min(meter.measure_series(r, refi, 200).min for r in rows)
    observed_ratio = min_ras / min_refi
    expected_ratio = device.min_rdt_tras / device.min_rdt_trefi
    assert observed_ratio == pytest.approx(expected_ratio, rel=0.35)
