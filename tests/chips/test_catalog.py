"""Tests for the tested-device catalog (Tables 1 and 7)."""

import math

import pytest

from repro.chips import (
    ALL_SPECS,
    DDR4_SPECS,
    FOUNDATIONAL_SPECS,
    HBM2_SPECS,
    build_module,
    spec,
    vrd_params_for,
)
from repro.chips.vendors import VENDORS, vendor
from repro.errors import CatalogError


def test_counts_match_paper():
    # 21 DDR4 modules and 4 HBM2 chips (Table 1).
    assert len(DDR4_SPECS) == 21
    assert len(HBM2_SPECS) == 4
    assert len(ALL_SPECS) == 25
    # The foundational study covers 14 devices (Figs. 3-5 x-axis).
    assert len(FOUNDATIONAL_SPECS) == 14


def test_manufacturer_split():
    per_vendor = {}
    for device in DDR4_SPECS:
        per_vendor.setdefault(device.manufacturer, []).append(device)
    assert len(per_vendor["H"]) == 7
    assert len(per_vendor["M"]) == 7
    assert len(per_vendor["S"]) == 7


def test_total_ddr4_chip_count_is_160():
    assert sum(device.chips for device in DDR4_SPECS) == 160


def test_lookup():
    assert spec("M1").module_id == "M1"
    assert spec("Chip0").standard == "HBM2"
    with pytest.raises(CatalogError):
        spec("Z9")


def test_enorm_monotone_in_n():
    # Table 7: more measurements always tighten the expected normalized
    # minimum (median and max are non-increasing in N).
    for device in ALL_SPECS:
        medians = [device.enorm[n][0] for n in (1, 5, 50, 500)]
        assert medians == sorted(medians, reverse=True)


def test_vendor_profiles_cover_findings():
    # Finding 13: a different worst pattern per manufacturer.
    worst = {
        key: max(profile.pattern_depth, key=profile.pattern_depth.get)
        for key, profile in VENDORS.items()
    }
    assert worst["M"] == "checkered0"
    assert worst["S"] == "rowstripe1"
    assert worst["S-HBM"] == "rowstripe0"
    assert worst["H"] == "checkered1"
    with pytest.raises(CatalogError):
        vendor("Q")


def test_vrd_params_rowpress_anchor_exact():
    """The tau/alpha derivation must hit Table 7's tRAS/tREFI RDT ratio."""
    for device in ALL_SPECS:
        params = vrd_params_for(device)
        timing = device.timing

        def g(t):
            return 1.0 / (
                1.0 + (t / params.taggon_rdt_tau_ns) ** params.taggon_rdt_alpha
            )

        ratio = g(timing.tRAS) / g(timing.tREFI)
        expected = device.min_rdt_tras / device.min_rdt_trefi
        assert ratio == pytest.approx(expected, rel=1e-9), device.module_id


def test_vrd_params_scale_with_targets():
    # Modules with larger Table 7 medians get deeper shallow traps.
    weak = vrd_params_for(spec("H0"))   # median 1.04
    strong = vrd_params_for(spec("M6"))  # median 1.09
    assert strong.depth_scale > weak.depth_scale
    # Worst-row targets drive the deep-trap depth.
    assert vrd_params_for(spec("S0")).big_trap_depth > vrd_params_for(
        spec("H2")
    ).big_trap_depth


def test_build_module_kinds_and_determinism():
    ddr4 = build_module("M1", seed=5)
    assert ddr4.kind == "DDR4"
    hbm = build_module("Chip1", seed=5)
    assert hbm.kind == "HBM2"
    again = build_module("M1", seed=5)
    assert (
        ddr4.fault_model.process(0, 7).base_rdt
        == again.fault_model.process(0, 7).base_rdt
    )


def test_m0_has_row_uniform_layout():
    # Sec. 5.6 measures whole true-/anti-cell rows on module M0.
    m0 = build_module("M0")
    assert m0.cell_layout.row_uniform
    other = build_module("M1")
    assert not other.cell_layout.row_uniform


def test_density_parsing_and_labels():
    device = spec("S4")
    assert device.density_gb == 4
    assert "S4" in device.label()


def test_date_codes_from_table1():
    assert spec("H2").date_code == "43-18"
    assert spec("M5").date_code == "10-24"
    assert spec("S3").date_code == "20-23"
