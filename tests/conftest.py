"""Shared fixtures: small, fast simulated devices."""

from __future__ import annotations

import pytest

from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0
from repro.dram.faults import VrdModelParams
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule


SMALL_GEOMETRY = DramGeometry(
    n_banks=2, n_rows=1024, row_bits_per_chip=1024, n_chips=8
)


def make_module(
    module_id: str = "TEST",
    mean_rdt: float = 2000.0,
    seed: int = 1234,
    **param_overrides,
) -> DramModule:
    """A small module with a moderate RDT for fast bit-level tests."""
    params = VrdModelParams(mean_rdt=mean_rdt, **param_overrides)
    module = DramModule(
        module_id,
        geometry=SMALL_GEOMETRY,
        vrd_params=params,
        seed=seed,
    )
    return module


@pytest.fixture
def module() -> DramModule:
    mod = make_module()
    mod.disable_interference_sources()
    return mod


@pytest.fixture
def reference_config(module) -> TestConfig:
    return TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
