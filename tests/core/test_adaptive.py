"""Tests for the adaptive measurement scheduler (repro.core.adaptive)."""

import numpy as np
import pytest

from repro.core import CHECKERED0, ROWSTRIPE0, TestConfig
from repro.core.adaptive import (
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_EXHAUSTED,
    STOP_NEVER_FLIPPED,
    AdaptiveConfig,
    AdaptiveDriver,
    AdaptiveResult,
    AdaptiveScheduler,
    adaptive_search_trials,
    adaptive_series_trials,
    exhaustive_sweep_trials,
    measure_requests,
    running_statistics,
    sweep_flip_indices,
)
from repro.core.rdt import FastRdtMeter, HammerSweep
from repro.errors import ConfigurationError, MeasurementError
from tests.conftest import make_module


def _config(module, pattern=CHECKERED0):
    return TestConfig(pattern, t_agg_on_ns=module.timing.tRAS)


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        config = AdaptiveConfig()
        assert config.z > 2.5  # 99% two-sided

    @pytest.mark.parametrize("kwargs", [
        dict(confidence=0.0),
        dict(confidence=1.0),
        dict(rel_precision=-0.1),
        dict(rel_precision=0.0, abs_precision=0.0),
        dict(min_measurements=1),
        dict(min_measurements=50, max_measurements=10),
        dict(budget=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(**kwargs)

    def test_dict_round_trip(self):
        config = AdaptiveConfig(confidence=0.9, budget=500)
        assert AdaptiveConfig.from_dict(config.to_dict()) == config


class TestSearchCostModel:
    """adaptive_search_trials simulates probing; verify it against an
    explicit probe simulation and its structural properties."""

    def _probe_count_reference(self, target, grid_size, warm):
        """Independent re-derivation: count probes of a correct
        bracket-then-bisect search against a monotone flip predicate
        (index >= target flips)."""
        probes = 0
        pivot = grid_size // 2 if warm is None else min(max(warm, 0),
                                                        grid_size - 1)
        probes += 1
        lo, hi = 0, grid_size
        if pivot >= target:
            hi, step = pivot, 1
            while hi > lo:
                lower = max(lo, hi - step)
                probes += 1
                if lower >= target:
                    hi = lower
                else:
                    lo = lower + 1
                    break
                step *= 2
        else:
            lo, step = pivot + 1, 1
            while lo < grid_size:
                upper = min(grid_size - 1, lo + step - 1)
                probes += 1
                if upper >= target:
                    hi = upper
                    break
                lo = upper + 1
                step *= 2
        while lo < hi:
            mid = (lo + hi) // 2
            probes += 1
            if mid >= target:
                hi = mid
            else:
                lo = mid + 1
        return probes

    @pytest.mark.parametrize("grid_size", [1, 2, 250, 251])
    def test_bounded_by_grid(self, grid_size):
        for target in range(grid_size + 1):
            for warm in [None, 0, grid_size // 2, grid_size - 1]:
                trials = adaptive_search_trials(target, grid_size, warm)
                assert 1 <= trials <= grid_size + 2
                assert trials == self._probe_count_reference(
                    target, grid_size, warm
                )

    def test_logarithmic_from_cold_start(self):
        # Any target on the standard 250-point grid costs O(log n) probes,
        # far below the linear sweep's worst case.
        worst = max(
            adaptive_search_trials(t, 250, None) for t in range(251)
        )
        assert worst <= 20

    def test_warm_start_beats_cold_nearby(self):
        cold = adaptive_search_trials(200, 250, None)
        warm = adaptive_search_trials(200, 250, 199)
        assert warm < cold

    def test_empty_grid_free(self):
        assert adaptive_search_trials(0, 0) == 0


class TestTrialAccounting:
    def test_flip_indices_and_exhaustive_cost(self):
        sweep = HammerSweep.from_guess(10_000.0)
        grid = sweep.grid()
        values = np.array([grid[0], grid[10], float("nan")])
        indices = sweep_flip_indices(values, sweep)
        assert list(indices) == [0, 10, grid.size]
        # Linear sweep: index+1 probes per flip, full grid for NaN.
        assert exhaustive_sweep_trials(values, sweep) == 1 + 11 + grid.size

    def test_series_trials_thread_warm_start(self):
        sweep = HammerSweep.from_guess(10_000.0)
        grid = sweep.grid()
        stable = np.full(20, grid[100])
        total, warm = adaptive_series_trials(stable, sweep, None)
        assert warm == 100
        # After the first locate, every repeat costs ~2 probes (warm pivot
        # flips, neighbor below does not).
        first = adaptive_search_trials(100, grid.size, None)
        assert total == first + 19 * 2


class TestRunningStatistics:
    def test_empty_and_single(self):
        z = AdaptiveConfig().z
        mean, std, cv, half = running_statistics(np.array([]), z)
        assert all(x != x for x in (mean, std, cv, half))
        mean, std, cv, half = running_statistics(np.array([5.0]), z)
        assert mean == 5.0 and half == float("inf")

    def test_iid_interval_shrinks(self):
        rng = np.random.default_rng(0)
        z = 2.0
        small = running_statistics(rng.normal(100, 5, 10), z)[3]
        large = running_statistics(rng.normal(100, 5, 1000), z)[3]
        assert large < small

    def test_autocorrelated_series_widens_interval(self):
        # A slow two-state process: same marginal std, fewer effective
        # samples, so the corrected interval must be wider than iid.
        sticky = np.array([100.0] * 30 + [120.0] * 30)
        iid = np.tile([100.0, 120.0], 30)
        z = 2.0
        assert running_statistics(sticky, z)[3] > (
            running_statistics(iid, z)[3]
        )

    def test_nan_measurements_ignored(self):
        z = 2.0
        values = np.array([10.0, float("nan"), 12.0, float("nan"), 11.0])
        mean = running_statistics(values, z)[0]
        assert mean == pytest.approx(11.0)


class TestScheduler:
    def test_converges_and_saves_trials(self, module):
        config = _config(module)
        result = AdaptiveScheduler(
            module, [config], AdaptiveConfig(max_measurements=200)
        ).run([3, 17, 40])
        assert len(result) == 3
        assert result.stopping_reasons() == {STOP_CONVERGED: 3}
        assert result.trial_reduction_estimate > 10
        for estimate in result.estimates:
            assert estimate.n_measured < 200
            assert estimate.trials < estimate.exhaustive_trials
            assert estimate.ci_half_width > 0

    def test_estimates_match_oracle_mean(self, module):
        config = _config(module)
        n_max = 200
        result = AdaptiveScheduler(
            module, [config], AdaptiveConfig(max_measurements=n_max)
        ).run([3, 17])
        meter = FastRdtMeter(module, 0)
        module.set_temperature(config.temperature_c)
        for estimate in result.estimates:
            series = meter.measure_series(estimate.row, config, n_max)
            oracle = float(np.nanmean(series.values))
            oracle_std = float(np.nanstd(series.values))
            # Statistical containment: the adaptive CI plus the oracle
            # mean's own sampling noise must cover the oracle mean.
            bound = estimate.ci_half_width + 3 * oracle_std / np.sqrt(n_max)
            assert abs(estimate.estimate - oracle) <= bound

    def test_exhausted_when_precision_unreachable(self, module):
        config = _config(module)
        result = AdaptiveScheduler(
            module,
            [config],
            AdaptiveConfig(
                rel_precision=1e-9, max_measurements=16, min_measurements=4
            ),
        ).run([3])
        assert result.estimates[0].stopping_reason == STOP_EXHAUSTED
        assert result.estimates[0].n_measured == 16

    def test_never_flipped_row(self, module):
        # An absurdly low temperature drives latent RDT far above the
        # sweep grid built from the guess stream? Not available — instead
        # simulate through the driver directly below. Here just assert a
        # normal run has none.
        config = _config(module)
        result = AdaptiveScheduler(
            module, [config], AdaptiveConfig(max_measurements=50)
        ).run([3])
        assert STOP_NEVER_FLIPPED not in result.stopping_reasons()

    def test_budget_partial_funding(self, module):
        config = _config(module)
        result = AdaptiveScheduler(
            module,
            [config],
            AdaptiveConfig(max_measurements=200, budget=120),
        ).run([3, 17, 40, 100, 200])
        assert result.trials_spent > 0
        reasons = result.stopping_reasons()
        assert reasons.get(STOP_BUDGET, 0) >= 1
        # The spend respects the budget up to one in-flight round.
        assert result.trials_spent <= 120 + 200

    def test_multi_config_and_multi_bank(self, module):
        configs = [_config(module), _config(module, ROWSTRIPE0)]
        result = AdaptiveScheduler(
            module, configs, AdaptiveConfig(max_measurements=100)
        ).run_pairs([(0, 3), (1, 17)])
        assert len(result) == 4
        labels = {(e.bank, e.row, e.config.label()) for e in result.estimates}
        assert len(labels) == 4

    def test_payload_round_trip(self, module):
        config = _config(module)
        result = AdaptiveScheduler(
            module, [config], AdaptiveConfig(max_measurements=100)
        ).run([3, 17])
        restored = AdaptiveResult.from_payload(result.to_payload())
        assert restored.module_id == result.module_id
        assert restored.adaptive == result.adaptive
        assert restored.rounds == result.rounds
        for a, b in zip(restored.estimates, result.estimates):
            assert a == b

    def test_payload_kind_checked(self):
        with pytest.raises(MeasurementError):
            AdaptiveResult.from_payload({"kind": "campaign"})

    def test_obs_counters(self, module):
        from repro import obs

        config = _config(module)
        with obs.tracing() as recorder:
            result = AdaptiveScheduler(
                module, [config], AdaptiveConfig(max_measurements=100)
            ).run([3, 17])
        assert recorder.counters["adaptive.trials"] == result.trials_spent
        assert recorder.counters["adaptive.rounds"] == result.rounds
        assert recorder.counters[
            f"adaptive.stop.{STOP_CONVERGED}"
        ] == len(result)
        assert "adaptive.run_pairs" in recorder.spans

    def test_tracing_never_perturbs_results(self, module):
        from repro import obs

        config = _config(module)

        def run():
            return AdaptiveScheduler(
                module, [config], AdaptiveConfig(max_measurements=100)
            ).run([3, 17])

        plain = run()
        with obs.tracing():
            traced = run()
        assert [e.estimate for e in plain.estimates] == (
            [e.estimate for e in traced.estimates]
        )


class TestDriverProtocol:
    def test_rejects_empty_inputs(self):
        config = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
        with pytest.raises(MeasurementError):
            AdaptiveDriver("X", [], [config])
        with pytest.raises(MeasurementError):
            AdaptiveDriver("X", [(0, 1)], [])
        with pytest.raises(MeasurementError):
            AdaptiveDriver("X", [(0, 1), (0, 1)], [config])

    def test_round_discipline(self, module):
        config = _config(module)
        driver = AdaptiveDriver(
            module.module_id, [(0, 3)], [config],
            AdaptiveConfig(max_measurements=50),
        )
        requests = driver.next_requests()
        assert len(requests) == 1
        # Planning again before ingesting is a protocol violation.
        with pytest.raises(MeasurementError):
            driver.next_requests()
        # Finishing mid-round too.
        with pytest.raises(MeasurementError):
            driver.finish()
        replies = measure_requests(module, requests)
        driver.ingest(replies)
        # Ingesting an unrequested key fails.
        with pytest.raises(MeasurementError):
            driver.ingest([(999, 1.0, [1.0])])

    def test_never_flipped_via_synthetic_replies(self):
        config = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
        adaptive = AdaptiveConfig(min_measurements=4, max_measurements=8)
        driver = AdaptiveDriver("X", [(0, 1)], [config], adaptive)
        requests = driver.next_requests()
        key, _, _, _, start, stop = requests[0]
        # All-NaN measurements: the sweep never flips.
        driver.ingest([(key, 10_000.0, [float("nan")] * (stop - start))])
        assert driver.next_requests() == []
        result = driver.finish()
        assert result.estimates[0].stopping_reason == STOP_NEVER_FLIPPED
        assert result.estimates[0].n_valid == 0
        assert result.estimates[0].estimate != result.estimates[0].estimate

    def test_budget_reallocation_counter(self):
        """Two rows, one noisy and one stable: once the stable row's CV
        drops below the noisy row's, the noisy row is funded first; when
        the budget then starves the stable (earlier-key) row, the funded
        noisy row counts as a reallocation."""
        config = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
        adaptive = AdaptiveConfig(
            min_measurements=4, max_measurements=64,
            rel_precision=1e-6, budget=10_000,
        )
        driver = AdaptiveDriver("X", [(0, 1), (0, 2)], [config], adaptive)
        sweep = HammerSweep.from_guess(10_000.0)
        grid = sweep.grid()
        rng = np.random.default_rng(7)

        def reply(request, spread):
            key, _, _, _, start, stop = request
            picks = rng.integers(0, spread, stop - start)
            return (key, 10_000.0, [float(grid[p]) for p in picks])

        spreads = {0: 1, 1: 200}  # key 0 stable, key 1 noisy
        rounds = 0
        while True:
            requests = driver.next_requests()
            if not requests:
                break
            rounds += 1
            driver.ingest([
                reply(request, spreads.get(request[0], 1))
                for request in requests
            ])
            if rounds > 50:
                raise AssertionError("driver failed to terminate")
        result = driver.finish()
        by_row = {e.row: e for e in result.estimates}
        # The noisy row consumed more measurements: budget flowed to the
        # row whose running CV stayed high.
        assert by_row[2].n_measured > by_row[1].n_measured
        assert by_row[1].stopping_reason == STOP_CONVERGED
        assert by_row[2].stopping_reason in (STOP_BUDGET, STOP_EXHAUSTED)
