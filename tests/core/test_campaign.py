"""Tests for characterization campaigns."""

import numpy as np
import pytest

from repro.core.campaign import Campaign, select_vulnerable_rows
from repro.core.config import TestConfig, standard_configs
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.errors import MeasurementError
from tests.conftest import make_module


def small_configs(module, patterns=ALL_PATTERNS[:2]):
    return list(
        standard_configs(
            module.timing,
            patterns=patterns,
            temperatures=(50.0,),
            t_agg_on_values=(module.timing.tRAS,),
        )
    )


def test_select_vulnerable_rows_prefers_low_rdt(module):
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    rows = select_vulnerable_rows(
        module, config, block_rows=64, per_block=5, probe_repeats=3
    )
    assert len(rows) == 15
    assert len(set(rows)) == 15
    # Selected rows must come from the three probed blocks.
    n = module.geometry.n_rows
    blocks = set(range(64)) | set(range(n // 2 - 32, n // 2 + 32)) | set(
        range(n - 64, n)
    )
    assert set(rows) <= blocks


def test_select_rejects_oversized_block(module):
    config = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
    with pytest.raises(MeasurementError):
        select_vulnerable_rows(module, config, block_rows=10**7)


def test_campaign_runs_all_pairs(module):
    configs = small_configs(module)
    campaign = Campaign(module, configs, n_measurements=100)
    result = campaign.run([10, 20, 30])
    assert len(result) == len(configs) * 3
    assert result.rows() == [10, 20, 30]
    assert len(result.for_row(10)) == len(configs)


def test_campaign_metrics(module):
    configs = small_configs(module)
    result = Campaign(module, configs, n_measurements=300).run([10, 20, 30, 40])
    cv = result.max_cv_per_row()
    assert set(cv) == {10, 20, 30, 40}
    assert all(value >= 0 for value in cv.values())
    s_curve = result.cv_s_curve()
    assert list(s_curve) == sorted(s_curve)
    assert 0.0 <= result.fraction_always_varying() <= 1.0
    dist = result.expected_normalized_min_distribution(1)
    assert dist.shape == (len(result),)
    assert (dist >= 1.0).all()
    probs = result.probability_of_min_distribution(1)
    assert ((probs > 0) & (probs <= 1)).all()


def test_campaign_filter_by_pattern(module):
    configs = small_configs(module)
    result = Campaign(module, configs, n_measurements=100).run([10])
    only = result.filter(lambda obs: obs.config.pattern.name == "rowstripe0")
    assert len(only) == 1


def test_campaign_validation(module):
    configs = small_configs(module)
    with pytest.raises(MeasurementError):
        Campaign(module, configs, n_measurements=1)
    with pytest.raises(MeasurementError):
        Campaign(module, configs, n_measurements=100).run([])


def test_batched_campaign_identical_to_reference(module):
    """The packed device fast path must reproduce the per-row guess +
    measure loop observation for observation, bit for bit."""
    configs = small_configs(module)
    rows = [10, 20, 20, 30]  # duplicate pair re-measures identically
    batched = Campaign(module, configs, n_measurements=60).run(rows)
    reference = Campaign(
        module, configs, n_measurements=60, batched=False
    ).run(rows)
    assert len(batched) == len(reference)
    for fast, slow in zip(batched.observations, reference.observations):
        assert (fast.bank, fast.row, fast.config) == (
            slow.bank,
            slow.row,
            slow.config,
        )
        assert fast.series.grid_step == slow.series.grid_step
        np.testing.assert_array_equal(fast.series.values, slow.series.values)
