"""Tests for merging partial campaign results."""

import pytest

from repro.core.campaign import Campaign
from repro.core.config import standard_configs
from repro.core.patterns import ALL_PATTERNS
from repro.errors import MeasurementError


def run_campaign(module, patterns, rows):
    configs = list(
        standard_configs(
            module.timing,
            patterns=patterns,
            temperatures=(50.0,),
            t_agg_on_values=(module.timing.tRAS,),
        )
    )
    return Campaign(module, configs, n_measurements=100).run(rows)


def test_merge_disjoint_configs(module):
    a = run_campaign(module, ALL_PATTERNS[:1], [10, 20])
    b = run_campaign(module, ALL_PATTERNS[1:2], [10, 20])
    merged = a.merge(b)
    assert len(merged) == len(a) + len(b)
    assert merged.rows() == [10, 20]
    # Originals are untouched.
    assert len(a) == 2 and len(b) == 2


def test_merge_disjoint_rows(module):
    a = run_campaign(module, ALL_PATTERNS[:1], [10])
    b = run_campaign(module, ALL_PATTERNS[:1], [20])
    merged = a.merge(b)
    assert merged.rows() == [10, 20]


def test_merge_rejects_duplicates(module):
    a = run_campaign(module, ALL_PATTERNS[:1], [10])
    b = run_campaign(module, ALL_PATTERNS[:1], [10])
    with pytest.raises(MeasurementError):
        a.merge(b)


def test_merge_rejects_different_modules(module):
    from tests.conftest import make_module

    other = make_module(module_id="OTHER")
    other.disable_interference_sources()
    a = run_campaign(module, ALL_PATTERNS[:1], [10])
    b = run_campaign(other, ALL_PATTERNS[:1], [20])
    with pytest.raises(MeasurementError):
        a.merge(b)


def test_merged_metrics_consistent(module):
    a = run_campaign(module, ALL_PATTERNS[:2], [10, 20])
    b = run_campaign(module, ALL_PATTERNS[2:], [10, 20])
    merged = a.merge(b)
    full = run_campaign(module, ALL_PATTERNS, [10, 20])
    assert merged.max_cv_per_row() == full.max_cv_per_row()
