"""Tests for test configurations and the Sec. 5 parameter grid."""

import pytest

from repro.core.config import (
    STANDARD_TEMPERATURES,
    TestConfig,
    standard_configs,
    standard_t_agg_on_values,
)
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.dram.timing import DDR4_3200
from repro.errors import ConfigurationError


def test_standard_grid_size():
    configs = list(standard_configs(DDR4_3200))
    # 4 patterns x 3 on-times x 3 temperatures = 36 combinations.
    assert len(configs) == 36
    labels = {config.label() for config in configs}
    assert len(labels) == 36


def test_standard_on_times():
    values = standard_t_agg_on_values(DDR4_3200)
    assert values[0] == DDR4_3200.tRAS
    assert values[1] == DDR4_3200.tREFI
    assert values[2] == 9 * DDR4_3200.tREFI


def test_temperatures():
    assert STANDARD_TEMPERATURES == (50.0, 65.0, 80.0)


def test_condition_floors_on_time():
    config = TestConfig(CHECKERED0, t_agg_on_ns=1.0)
    condition = config.condition(DDR4_3200)
    assert condition.t_agg_on == DDR4_3200.tRAS


def test_label_formats_units():
    assert TestConfig(CHECKERED0, 35.0, 65.0).label() == "checkered0/35ns/65C"
    assert "us" in TestConfig(CHECKERED0, 7800.0).label()


def test_invalid_on_time():
    with pytest.raises(ConfigurationError):
        TestConfig(CHECKERED0, t_agg_on_ns=0.0)


def test_subset_grid():
    configs = list(
        standard_configs(
            DDR4_3200,
            patterns=ALL_PATTERNS[:1],
            temperatures=(50.0,),
            t_agg_on_values=(35.0,),
        )
    )
    assert len(configs) == 1
