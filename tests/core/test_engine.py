"""The execution engine's correctness contract.

The engine promises results *bit-identical* to the serial
:class:`~repro.core.campaign.Campaign` loop for any worker count and any
shard order, and a cache that only ever returns exact round-trips of what
was stored. These tests assert that contract directly — array equality,
not statistical closeness.
"""

import numpy as np
import pytest

from repro.chips import build_module
from repro.core import CHECKERED0, ROWSTRIPE0, FastRdtMeter, TestConfig
from repro.core.campaign import Campaign, CampaignResult, select_vulnerable_rows
from repro.core.engine import (
    CampaignCache,
    CampaignEngine,
    JOBS_ENV_VAR,
    _measure_units,
    resolve_jobs,
)
from repro.errors import ConfigurationError, MeasurementError

MODULE_ID = "M1"
SEED = 1234
N_MEASUREMENTS = 60
ROWS = [3, 17, 40, 77, 105, 128]


def _configs(module):
    return [
        TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS),
        TestConfig(ROWSTRIPE0, t_agg_on_ns=module.timing.tRAS,
                   temperature_c=80.0),
    ]


@pytest.fixture(scope="module")
def serial_result():
    module = build_module(MODULE_ID, seed=SEED)
    module.disable_interference_sources()
    campaign = Campaign(module, _configs(module), n_measurements=N_MEASUREMENTS)
    return campaign.run(ROWS)


def _engine(n_jobs, cache=None, seed=SEED):
    module = build_module(MODULE_ID, seed=seed)
    return CampaignEngine(
        MODULE_ID,
        _configs(module),
        n_measurements=N_MEASUREMENTS,
        seed=seed,
        n_jobs=n_jobs,
        cache=cache,
    )


def assert_identical(left: CampaignResult, right: CampaignResult):
    """Bit-exact equality including observation order."""
    assert left.module_id == right.module_id
    assert len(left) == len(right)
    for a, b in zip(left.observations, right.observations):
        assert (a.bank, a.row, a.config) == (b.bank, b.row, b.config)
        np.testing.assert_array_equal(a.series.values, b.series.values)
        assert a.series.grid_step == b.series.grid_step


# ----------------------------------------------------------------------
# Bit-identical parallel execution
# ----------------------------------------------------------------------


def test_single_job_matches_serial_campaign(serial_result):
    assert_identical(_engine(n_jobs=1).run(ROWS), serial_result)


def test_four_jobs_match_serial_campaign(serial_result):
    assert_identical(_engine(n_jobs=4).run(ROWS), serial_result)


def test_job_counts_agree_with_each_other(serial_result):
    assert_identical(_engine(n_jobs=2).run(ROWS), _engine(n_jobs=3).run(ROWS))


def test_worker_shards_merge_to_serial_under_any_order(serial_result):
    """Shard the unit list arbitrarily, run shards through the worker
    entry point in scrambled order, and merge in every rotation: the
    stitched result must equal the serial loop regardless."""
    module = build_module(MODULE_ID, seed=SEED)
    configs = _configs(module)
    units = [
        (ci * len(ROWS) + pi, 0, row, config)
        for ci, config in enumerate(configs)
        for pi, row in enumerate(ROWS)
    ]
    # Deliberately unbalanced, interleaved, reversed shards.
    shards = [units[0:1], units[5:2:-1], units[2:0:-1], units[6::2],
              units[7::2]]
    partials = [
        _measure_units((MODULE_ID, SEED, True, N_MEASUREMENTS, shard, False))
        for shard in shards
    ]
    assert all(snapshot is None for _, _, snapshot in partials)
    partials = [(indices, partial) for indices, partial, _ in partials]
    for rotation in range(len(partials)):
        ordered = partials[rotation:] + partials[:rotation]
        index_of = {}
        for indices, partial in ordered:
            for unit_index, obs in zip(indices, partial.observations):
                index_of[(obs.bank, obs.row, obs.config)] = unit_index
        merged = ordered[0][1]
        for _, partial in ordered[1:]:
            merged = merged.merge(partial)
        merged.observations.sort(
            key=lambda obs: index_of[(obs.bank, obs.row, obs.config)]
        )
        assert_identical(merged, serial_result)


def test_engine_rejects_duplicate_pairs():
    with pytest.raises(MeasurementError):
        _engine(n_jobs=1).run_pairs([(0, 5), (0, 5)])


def test_engine_rejects_empty_rows():
    with pytest.raises(MeasurementError):
        _engine(n_jobs=1).run([])


# ----------------------------------------------------------------------
# Batched probing
# ----------------------------------------------------------------------


@pytest.mark.parametrize("module_id", ["M1", "S3", "Chip0"])
def test_batched_probe_equals_per_row_guesses(module_id):
    """guess_rdt_batch must reproduce guess_rdt bit-for-bit, including on
    modules with non-identity logical-to-physical row mappings (S3,
    Chip0)."""
    module = build_module(module_id, seed=7)
    module.disable_interference_sources()
    meter = FastRdtMeter(module, bank=0)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    rows = [0, 5, 9, 13, 64, 200]
    batch = meter.guess_rdt_batch(rows, config, repeats=10)
    singles = np.array([meter.guess_rdt(row, config) for row in rows])
    np.testing.assert_array_equal(batch, singles)


def test_batched_selection_equals_reference_selection():
    module = build_module(MODULE_ID, seed=SEED)
    module.disable_interference_sources()
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    fast = select_vulnerable_rows(module, config, block_rows=48, per_block=6)
    reference = select_vulnerable_rows(
        module, config, block_rows=48, per_block=6, batched=False
    )
    assert fast == reference


def test_geometric_mirror_self_check_passes():
    """The probe fast path relies on an exact mirror of numpy's geometric
    sampler; the import-time self-check must accept this numpy build
    (otherwise the probe silently degrades to the slow path)."""
    from repro.dram import faults

    assert faults._geometric_search_mirror_ok()
    assert faults._BULK_UNIFORM_OK


# ----------------------------------------------------------------------
# Job resolution
# ----------------------------------------------------------------------


def test_resolve_jobs_explicit_and_env(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv(JOBS_ENV_VAR, "4")
    assert resolve_jobs(None) == 4
    assert resolve_jobs(2) == 2  # explicit wins
    monkeypatch.setenv(JOBS_ENV_VAR, "zero")
    with pytest.raises(ConfigurationError):
        resolve_jobs(None)
    with pytest.raises(ConfigurationError):
        resolve_jobs(0)


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------


def test_cache_round_trip(tmp_path, serial_result):
    cache = CampaignCache(tmp_path / "cache")
    engine = _engine(n_jobs=1, cache=cache)
    first = engine.run(ROWS)
    assert cache.has(
        cache.key(
            seed=SEED,
            module_id=MODULE_ID,
            configs=engine.configs,
            n_measurements=N_MEASUREMENTS,
            pairs=[(0, row) for row in ROWS],
            protocol="DDR4",
        )
    )
    reloaded = _engine(n_jobs=1, cache=cache).run(ROWS)
    assert_identical(reloaded, first)
    assert_identical(reloaded, serial_result)


def test_cache_misses_on_different_seed(tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    first = _engine(n_jobs=1, cache=cache, seed=SEED).run(ROWS)
    other = _engine(n_jobs=1, cache=cache, seed=SEED + 1).run(ROWS)
    assert cache.entry_count() == 2
    with pytest.raises(AssertionError):
        assert_identical(first, other)


def test_cache_key_separates_every_recipe_axis():
    from repro.core.adaptive import AdaptiveConfig

    cache_key_kwargs = dict(
        seed=1, module_id="M1",
        configs=[TestConfig(CHECKERED0, t_agg_on_ns=35.0)],
        n_measurements=100, pairs=[(0, 1)],
    )
    cache = CampaignCache.resolve(".")  # no writes: key() is pure
    base = cache.key(**cache_key_kwargs)
    for change in (
        dict(seed=2),
        dict(module_id="M4"),
        dict(configs=[TestConfig(ROWSTRIPE0, t_agg_on_ns=35.0)]),
        dict(n_measurements=101),
        dict(pairs=[(0, 2)]),
        dict(extra={"driver": "x"}),
        dict(schedule="adaptive"),
        dict(schedule="adaptive", adaptive=AdaptiveConfig()),
        dict(protocol="DDR4"),
        dict(protocol="HBM2"),
    ):
        assert cache.key(**{**cache_key_kwargs, **change}) != base


def test_cache_key_separates_adaptive_parameters():
    """Regression for the aliasing bug class: every adaptive knob —
    budget, confidence, precision, grid-refinement ceiling — must change
    the key, so adaptive runs with different stopping behavior (and
    adaptive vs exhaustive runs) can never share a cache entry."""
    from repro.core.adaptive import AdaptiveConfig

    cache = CampaignCache.resolve(".")  # no writes: key() is pure
    recipe = dict(
        seed=1, module_id="M1",
        configs=[TestConfig(CHECKERED0, t_agg_on_ns=35.0)],
        n_measurements=100, pairs=[(0, 1)],
        schedule="adaptive",
    )
    base = cache.key(**recipe, adaptive=AdaptiveConfig())
    variants = [
        AdaptiveConfig(budget=1000),
        AdaptiveConfig(confidence=0.95),
        AdaptiveConfig(rel_precision=0.1),
        AdaptiveConfig(abs_precision=50.0),
        AdaptiveConfig(min_measurements=4),
        AdaptiveConfig(max_measurements=500),
    ]
    keys = {base}
    for adaptive in variants:
        keys.add(cache.key(**recipe, adaptive=adaptive))
    assert len(keys) == len(variants) + 1

    with pytest.raises(ConfigurationError):
        cache.key(**{**recipe, "schedule": "exhaustive"},
                  adaptive=AdaptiveConfig())


def test_adaptive_and_exhaustive_never_alias_on_disk(tmp_path):
    """End-to-end: the same rows/configs/seed through both schedules must
    produce two distinct cache entries, and each engine must reload its
    own result exactly."""
    from repro.core.adaptive import AdaptiveConfig

    cache = CampaignCache(tmp_path / "cache")
    adaptive_config = AdaptiveConfig(max_measurements=N_MEASUREMENTS)
    exhaustive = _engine(n_jobs=1, cache=cache).run(ROWS)

    module = build_module(MODULE_ID, seed=SEED)
    adaptive_engine = CampaignEngine(
        MODULE_ID,
        _configs(module),
        n_measurements=N_MEASUREMENTS,
        seed=SEED,
        n_jobs=1,
        cache=cache,
        schedule="adaptive",
        adaptive=adaptive_config,
    )
    adaptive = adaptive_engine.run(ROWS)
    assert cache.entry_count() == 2

    reloaded_exhaustive = _engine(n_jobs=1, cache=cache).run(ROWS)
    assert_identical(reloaded_exhaustive, exhaustive)
    reloaded_adaptive = adaptive_engine.run(ROWS)
    assert [e.to_dict() for e in reloaded_adaptive.estimates] == (
        [e.to_dict() for e in adaptive.estimates]
    )


def test_load_adaptive_rejects_exhaustive_payload(tmp_path):
    """A campaign payload under an adaptive key is corrupt, not a hit."""
    from repro import obs

    cache = CampaignCache(tmp_path / "cache")
    first = _engine(n_jobs=1, cache=cache).run(ROWS)
    assert first is not None
    [key] = cache.result_store.keys()
    with obs.tracing() as recorder:
        assert cache.load_adaptive(key) is None
    assert recorder.counters.get("cache.corrupt") == 1
    assert not cache.has(key)  # evicted


def _inject_raw(cache, key, blob, kind="campaign"):
    """Plant a raw payload blob under ``key`` with a *matching* checksum,
    bypassing the store's JSON encoding — simulates a tampered or
    version-skewed entry that passes integrity checks but fails to
    decode/validate."""
    import sqlite3
    import time

    from repro.store.db import payload_checksum

    store = cache.result_store
    store._ensure_created()
    with sqlite3.connect(store.path) as conn:
        conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, kind, checksum, payload, nbytes, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (key, kind, payload_checksum(blob), blob, len(blob),
             time.time()),
        )


@pytest.mark.parametrize("blob", [
    "{not json",                         # truncated writer
    "[]",                                # wrong payload root
    '{"format_version": 999}',           # unsupported version
    '{"format_version": 1}',             # right version, missing body
], ids=["truncated", "wrong-root", "wrong-version", "missing-body"])
def test_corrupt_cache_entry_is_counted_evicted_and_missed(tmp_path, blob):
    from repro import obs

    cache = CampaignCache(tmp_path / "cache")
    key = "deadbeef"
    _inject_raw(cache, key, blob.encode("utf-8"))
    with obs.tracing() as recorder:
        assert cache.load(key) is None
    assert recorder.counters.get("cache.corrupt") == 1
    assert "cache.hit" not in recorder.counters
    assert not cache.has(key)  # evicted from the store


def test_corrupt_entry_recomputes_to_identical_result(tmp_path, serial_result):
    from repro import obs

    import sqlite3

    cache = CampaignCache(tmp_path / "cache")
    _engine(n_jobs=1, cache=cache).run(ROWS)
    [key] = cache.result_store.keys()
    with sqlite3.connect(cache.result_store.path) as conn:
        (blob,) = conn.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)
        ).fetchone()
        conn.execute(  # torn write: checksum no longer matches
            "UPDATE results SET payload = ? WHERE key = ?",
            (blob[: len(blob) // 2], key),
        )

    with obs.tracing() as recorder:
        recomputed = _engine(n_jobs=1, cache=cache).run(ROWS)
    assert_identical(recomputed, serial_result)
    assert recorder.counters.get("cache.corrupt") == 1
    assert recorder.counters.get("cache.store") == 1  # re-stored after evict

    with obs.tracing() as recorder:
        assert_identical(_engine(n_jobs=1, cache=cache).run(ROWS), serial_result)
    assert recorder.counters.get("cache.hit") == 1


def test_unreadable_store_is_a_plain_miss(tmp_path):
    from repro import obs

    cache = CampaignCache(tmp_path / "cache")
    # Occupy the database path with a directory: sqlite cannot open it
    # (OSError-equivalent), which must degrade to a plain miss — not a
    # corruption event, and nothing to evict.
    cache.result_store.path.mkdir(parents=True)
    with obs.tracing() as recorder:
        assert cache.load("deadbeef") is None
    assert recorder.counters.get("cache.miss") == 1
    assert "cache.corrupt" not in recorder.counters
    assert cache.result_store.path.exists()  # left alone: nothing to repair


def test_cache_resolve_env(tmp_path, monkeypatch):
    monkeypatch.setenv("VRD_CACHE_DIR", str(tmp_path / "env-cache"))
    cache = CampaignCache.resolve()
    assert cache is not None and cache.root == tmp_path / "env-cache"
    monkeypatch.setenv("VRD_CACHE_DIR", "")
    assert CampaignCache.resolve() is None
    assert CampaignCache.resolve(tmp_path / "explicit") is not None

    # VRD_STORE_PATH names the database file directly and outranks
    # VRD_CACHE_DIR; empty disables like the legacy variable.
    monkeypatch.setenv("VRD_CACHE_DIR", str(tmp_path / "ignored"))
    monkeypatch.setenv("VRD_STORE_PATH", str(tmp_path / "direct.sqlite"))
    cache = CampaignCache.resolve()
    assert cache is not None
    assert cache.result_store.path == tmp_path / "direct.sqlite"
    monkeypatch.setenv("VRD_STORE_PATH", "")
    assert CampaignCache.resolve() is None
