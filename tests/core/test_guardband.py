"""Tests for the Sec. 6.3-6.4 guardband analyses."""

import numpy as np
import pytest

from repro.core.config import TestConfig
from repro.core.guardband import (
    GuardbandProbability,
    bit_error_rate,
    guardband_probability_analysis,
    margin_bitflip_experiment,
)
from repro.core.montecarlo import probability_of_min
from repro.core.patterns import CHECKERED0
from repro.core.series import RdtSeries
from repro.errors import MeasurementError
from tests.conftest import make_module


def synthetic_series(count=20, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RdtSeries(np.round(rng.normal(1000, 15, 1000)), row=i)
        for i in range(count)
    ]


class TestGuardbandProbability:
    def test_structure(self):
        results = guardband_probability_analysis(
            synthetic_series(), margins=(0.10, 0.50), n_values=(1, 50)
        )
        assert len(results) == 4
        for cell in results:
            assert 0 <= cell.min_probability <= cell.mean_probability <= 1

    def test_larger_margin_raises_probability(self):
        series = synthetic_series()
        results = {
            (cell.margin, cell.n): cell
            for cell in guardband_probability_analysis(
                series, margins=(0.10, 0.50), n_values=(5,)
            )
        }
        assert (
            results[(0.50, 5)].mean_probability
            >= results[(0.10, 5)].mean_probability
        )

    def test_more_measurements_raise_probability(self):
        series = synthetic_series()
        results = {
            cell.n: cell
            for cell in guardband_probability_analysis(
                series, margins=(0.10,), n_values=(1, 50, 500)
            )
        }
        assert (
            results[1].mean_probability
            <= results[50].mean_probability
            <= results[500].mean_probability
        )

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            guardband_probability_analysis([])


class TestMarginBitflips:
    def test_experiment_structure(self, module, reference_config):
        results = margin_bitflip_experiment(
            module,
            row=100,
            config=reference_config,
            margins=(0.10, 0.30),
            trials=500,
        )
        assert [r.margin for r in results] == [0.10, 0.30]
        for result in results:
            assert result.hammer_count > 0
            assert result.flipping_trials <= result.trials
            assert result.n_unique_flips <= module.geometry.row_bits

    def test_larger_margin_fewer_flips(self, module, reference_config):
        results = margin_bitflip_experiment(
            module,
            row=100,
            config=reference_config,
            margins=(0.10, 0.50),
            trials=2000,
        )
        by_margin = {r.margin: r for r in results}
        assert (
            by_margin[0.50].flipping_trials <= by_margin[0.10].flipping_trials
        )

    def test_flips_by_chip_and_codeword(self, module, reference_config):
        results = margin_bitflip_experiment(
            module, row=100, config=reference_config, margins=(0.10,),
            trials=2000,
        )
        result = results[0]
        grouped = result.flips_by_chip(module.geometry)
        assert sum(len(bits) for bits in grouped.values()) == result.n_unique_flips
        assert result.max_flips_per_codeword() <= max(1, result.n_unique_flips)

    def test_invalid_margin(self, module, reference_config):
        with pytest.raises(MeasurementError):
            margin_bitflip_experiment(
                module, 100, reference_config, margins=(1.5,), trials=10
            )

    def test_bit_error_rate(self, module, reference_config):
        results = margin_bitflip_experiment(
            module, 100, reference_config, margins=(0.10,), trials=100
        )
        ber = bit_error_rate(results, module.geometry.row_bits)
        assert 0.0 <= ber <= 1.0
        with pytest.raises(MeasurementError):
            bit_error_rate([], 100)


def reference_probability_analysis(series_list, margins, n_values):
    """The pre-vectorization per-cell implementation, kept as the oracle."""
    if not series_list:
        raise MeasurementError("need at least one series")
    output = []
    for margin in margins:
        for n in n_values:
            probabilities = []
            for series in series_list:
                values = series.require_valid()
                if n > values.size:
                    continue
                probabilities.append(
                    probability_of_min(values, n, within=margin)
                )
            if not probabilities:
                continue
            output.append(
                GuardbandProbability(
                    margin=margin,
                    n=n,
                    mean_probability=float(np.mean(probabilities)),
                    min_probability=float(np.min(probabilities)),
                )
            )
    return output


class TestVectorizedEquality:
    def _series_list(self):
        rng = np.random.default_rng(11)
        series_list = []
        for row in range(6):
            values = rng.normal(2000.0, 150.0, size=400)
            values[rng.random(400) < 0.02] = np.nan  # failed sweeps
            series_list.append(RdtSeries(values, row=row))
        return series_list

    def test_analysis_matches_per_cell_reference(self):
        series_list = self._series_list()
        margins = (0.0, 0.05, 0.10, 0.30, 0.50)
        n_values = (1, 3, 5, 10, 50, 399, 500)
        fast = guardband_probability_analysis(series_list, margins, n_values)
        reference = reference_probability_analysis(
            series_list, margins, n_values
        )
        assert fast == reference

    def test_analysis_rejects_bad_cells(self):
        series_list = self._series_list()
        with pytest.raises(MeasurementError):
            guardband_probability_analysis(series_list, margins=(-0.1,))
        with pytest.raises(MeasurementError):
            guardband_probability_analysis(
                series_list, margins=(0.1,), n_values=(0,)
            )

    def test_margin_experiment_batched_equals_scalar(self):
        margins = (0.2, 0.4)
        outcomes = {}
        for batched in (True, False):
            module = make_module(seed=21)
            module.disable_interference_sources()
            config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
            results = margin_bitflip_experiment(
                module, 120, config, margins=margins,
                trials=400, batched=batched,
            )
            outcomes[batched] = [
                (r.margin, r.hammer_count, r.flipping_trials,
                 sorted(r.unique_flips))
                for r in results
            ]
            # Post-experiment device state must also agree: drain one more
            # latent value from the (stateful) vrd-seq stream.
            process = module.fault_model.process(
                0, module.bank(0).mapping.to_physical(120)
            )
            condition = config.condition(module.timing)
            process.begin_measurement(condition)
            outcomes[batched].append(process.current_threshold(condition))
        assert outcomes[True] == outcomes[False]
