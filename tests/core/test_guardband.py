"""Tests for the Sec. 6.3-6.4 guardband analyses."""

import numpy as np
import pytest

from repro.core.config import TestConfig
from repro.core.guardband import (
    bit_error_rate,
    guardband_probability_analysis,
    margin_bitflip_experiment,
)
from repro.core.patterns import CHECKERED0
from repro.core.series import RdtSeries
from repro.errors import MeasurementError
from tests.conftest import make_module


def synthetic_series(count=20, seed=0):
    rng = np.random.default_rng(seed)
    return [
        RdtSeries(np.round(rng.normal(1000, 15, 1000)), row=i)
        for i in range(count)
    ]


class TestGuardbandProbability:
    def test_structure(self):
        results = guardband_probability_analysis(
            synthetic_series(), margins=(0.10, 0.50), n_values=(1, 50)
        )
        assert len(results) == 4
        for cell in results:
            assert 0 <= cell.min_probability <= cell.mean_probability <= 1

    def test_larger_margin_raises_probability(self):
        series = synthetic_series()
        results = {
            (cell.margin, cell.n): cell
            for cell in guardband_probability_analysis(
                series, margins=(0.10, 0.50), n_values=(5,)
            )
        }
        assert (
            results[(0.50, 5)].mean_probability
            >= results[(0.10, 5)].mean_probability
        )

    def test_more_measurements_raise_probability(self):
        series = synthetic_series()
        results = {
            cell.n: cell
            for cell in guardband_probability_analysis(
                series, margins=(0.10,), n_values=(1, 50, 500)
            )
        }
        assert (
            results[1].mean_probability
            <= results[50].mean_probability
            <= results[500].mean_probability
        )

    def test_empty_rejected(self):
        with pytest.raises(MeasurementError):
            guardband_probability_analysis([])


class TestMarginBitflips:
    def test_experiment_structure(self, module, reference_config):
        results = margin_bitflip_experiment(
            module,
            row=100,
            config=reference_config,
            margins=(0.10, 0.30),
            trials=500,
        )
        assert [r.margin for r in results] == [0.10, 0.30]
        for result in results:
            assert result.hammer_count > 0
            assert result.flipping_trials <= result.trials
            assert result.n_unique_flips <= module.geometry.row_bits

    def test_larger_margin_fewer_flips(self, module, reference_config):
        results = margin_bitflip_experiment(
            module,
            row=100,
            config=reference_config,
            margins=(0.10, 0.50),
            trials=2000,
        )
        by_margin = {r.margin: r for r in results}
        assert (
            by_margin[0.50].flipping_trials <= by_margin[0.10].flipping_trials
        )

    def test_flips_by_chip_and_codeword(self, module, reference_config):
        results = margin_bitflip_experiment(
            module, row=100, config=reference_config, margins=(0.10,),
            trials=2000,
        )
        result = results[0]
        grouped = result.flips_by_chip(module.geometry)
        assert sum(len(bits) for bits in grouped.values()) == result.n_unique_flips
        assert result.max_flips_per_codeword() <= max(1, result.n_unique_flips)

    def test_invalid_margin(self, module, reference_config):
        with pytest.raises(MeasurementError):
            margin_bitflip_experiment(
                module, 100, reference_config, margins=(1.5,), trials=10
            )

    def test_bit_error_rate(self, module, reference_config):
        results = margin_bitflip_experiment(
            module, 100, reference_config, margins=(0.10,), trials=100
        )
        ber = bit_error_rate(results, module.geometry.row_bits)
        assert 0.0 <= ber <= 1.0
        with pytest.raises(MeasurementError):
            bit_error_rate([], 100)
