"""Tests for the Sec. 5.1 minimum-RDT analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.montecarlo import (
    expected_normalized_min,
    expected_normalized_min_monte_carlo,
    min_rdt_analysis,
    probability_of_min,
    probability_of_min_monte_carlo,
    scatter_points,
)
from repro.core.series import RdtSeries
from repro.errors import MeasurementError


def test_probability_exact_single_min():
    # Min appears once in 1000: one draw finds it with probability 1/1000.
    values = np.concatenate(([1.0], np.full(999, 2.0)))
    assert probability_of_min(values, 1) == pytest.approx(0.001)
    # 500 draws: 1 - C(999,500)/C(1000,500) = 0.5.
    assert probability_of_min(values, 500) == pytest.approx(0.5)


def test_probability_full_sample_certain():
    values = np.array([3.0, 1.0, 2.0])
    assert probability_of_min(values, 3) == 1.0


def test_probability_with_margin():
    values = np.array([100.0, 105.0, 109.0, 200.0])
    # Within 10% of the min: three qualifying values of four.
    assert probability_of_min(values, 1, within=0.10) == pytest.approx(0.75)


def test_expected_normalized_min_known_case():
    values = np.array([1.0, 2.0])
    # One draw: E[min] = 1.5, normalized = 1.5.
    assert expected_normalized_min(values, 1) == pytest.approx(1.5)
    # Two draws always include the min.
    assert expected_normalized_min(values, 2) == pytest.approx(1.0)


def test_monte_carlo_validates_closed_forms():
    rng = np.random.default_rng(0)
    values = np.round(rng.normal(1000, 15, 1000))
    for n in (1, 5, 50):
        exact = probability_of_min(values, n)
        estimate = probability_of_min_monte_carlo(
            values, n, iterations=20_000, rng=np.random.default_rng(1)
        )
        assert estimate == pytest.approx(exact, abs=0.02)
        exact_e = expected_normalized_min(values, n)
        estimate_e = expected_normalized_min_monte_carlo(
            values, n, iterations=20_000, rng=np.random.default_rng(2)
        )
        assert estimate_e == pytest.approx(exact_e, rel=0.01)


@given(
    values=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=300
    ),
    n=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=100, deadline=None)
def test_properties(values, n):
    data = np.array(values)
    n = min(n, data.size)
    p = probability_of_min(data, n)
    assert 0.0 < p <= 1.0
    e = expected_normalized_min(data, n)
    assert e >= 1.0 - 1e-9
    # More measurements never hurt.
    if n < data.size:
        assert probability_of_min(data, n + 1) >= p - 1e-12
        assert expected_normalized_min(data, n + 1) <= e + 1e-9


def test_monotone_in_margin():
    rng = np.random.default_rng(5)
    values = np.round(rng.normal(1000, 20, 500))
    p0 = probability_of_min(values, 5, within=0.0)
    p10 = probability_of_min(values, 5, within=0.10)
    assert p10 >= p0


def test_min_rdt_analysis_and_scatter():
    rng = np.random.default_rng(6)
    series = RdtSeries(np.round(rng.normal(1000, 15, 1000)))
    estimates = min_rdt_analysis(series)
    assert set(estimates) == {1, 3, 5, 10, 50, 500}
    xs, ys = scatter_points([estimates], n=1)
    assert xs.shape == ys.shape == (1,)


def test_invalid_inputs():
    with pytest.raises(MeasurementError):
        probability_of_min(np.array([]), 1)
    with pytest.raises(MeasurementError):
        probability_of_min(np.array([1.0]), 2)
    with pytest.raises(MeasurementError):
        probability_of_min(np.array([1.0, 2.0]), 1, within=-0.1)
    with pytest.raises(MeasurementError):
        expected_normalized_min(np.array([0.0, 1.0]), 1)
