"""Tests for the multi-channel (HBM2) campaign protocol."""

import pytest

from repro.chips import build_module
from repro.core.campaign import Campaign, select_hbm2_rows
from repro.core.config import standard_configs
from repro.core.patterns import ALL_PATTERNS
from repro.errors import MeasurementError


def test_select_hbm2_rows_spans_channels():
    module = build_module("Chip0")
    pairs = select_hbm2_rows(module, per_channel=10)
    assert len(pairs) == 30
    banks = {bank for bank, _ in pairs}
    assert banks == {0, 1, 2}
    # Rows within a channel are distinct.
    for channel in banks:
        rows = [row for bank, row in pairs if bank == channel]
        assert len(set(rows)) == len(rows)


def test_select_hbm2_rows_deterministic():
    module = build_module("Chip0")
    assert select_hbm2_rows(module, 5) == select_hbm2_rows(module, 5)


def test_select_hbm2_rows_validation():
    module = build_module("Chip0")
    with pytest.raises(MeasurementError):
        select_hbm2_rows(module, per_channel=0)
    with pytest.raises(MeasurementError):
        select_hbm2_rows(module, per_channel=5, channels=(99,))


def test_run_pairs_across_banks():
    module = build_module("Chip0")
    module.disable_interference_sources()
    configs = list(
        standard_configs(
            module.timing,
            patterns=ALL_PATTERNS[:1],
            temperatures=(50.0,),
            t_agg_on_values=(module.timing.tRAS,),
        )
    )
    campaign = Campaign(module, configs, n_measurements=100)
    pairs = select_hbm2_rows(module, per_channel=2)
    result = campaign.run_pairs(pairs)
    assert len(result) == len(pairs)
    assert {obs.bank for obs in result.observations} == {0, 1, 2}
    # Same physical row index on different channels is a distinct device
    # row: different base RDT.
    by_bank_row = {(obs.bank, obs.row): obs for obs in result.observations}
    banks_rows = list(by_bank_row)
    assert len(banks_rows) == len(pairs)


def test_run_pairs_empty_rejected():
    module = build_module("Chip0")
    configs = list(
        standard_configs(
            module.timing,
            patterns=ALL_PATTERNS[:1],
            temperatures=(50.0,),
            t_agg_on_values=(module.timing.tRAS,),
        )
    )
    with pytest.raises(MeasurementError):
        Campaign(module, configs, n_measurements=100).run_pairs([])
