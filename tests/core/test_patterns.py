"""Tests for the Table 2 data patterns."""

import pytest

from repro.core.patterns import (
    ALL_PATTERNS,
    CHECKERED0,
    CHECKERED1,
    ROWSTRIPE0,
    ROWSTRIPE1,
    pattern_by_name,
)
from repro.errors import ConfigurationError


def test_table2_bytes():
    assert ROWSTRIPE0.victim_byte == 0x00 and ROWSTRIPE0.aggressor_byte == 0xFF
    assert ROWSTRIPE1.victim_byte == 0xFF and ROWSTRIPE1.aggressor_byte == 0x00
    assert CHECKERED0.victim_byte == 0x55 and CHECKERED0.aggressor_byte == 0xAA
    assert CHECKERED1.victim_byte == 0xAA and CHECKERED1.aggressor_byte == 0x55


def test_four_patterns_in_paper_order():
    assert [p.name for p in ALL_PATTERNS] == [
        "rowstripe0", "rowstripe1", "checkered0", "checkered1",
    ]


def test_lookup_case_insensitive():
    assert pattern_by_name("Checkered0") is CHECKERED0
    with pytest.raises(ConfigurationError):
        pattern_by_name("zigzag")


def test_invalid_byte_rejected():
    from repro.core.patterns import DataPattern

    with pytest.raises(ConfigurationError):
        DataPattern("bad", 0x1FF)
