"""Tests for predictability and record-minima analyses."""

import numpy as np
import pytest

from repro.core.predict import (
    prediction_gains,
    record_minima,
    stopping_time_quantiles,
)
from repro.errors import MeasurementError


class TestPredictionGains:
    def test_white_noise_no_predictor_wins(self):
        rng = np.random.default_rng(0)
        gains = prediction_gains(rng.normal(1000, 10, 5000))
        for name, gain in gains.items():
            assert gain > 0.9, name
        # Last-value prediction of white noise doubles the MSE.
        assert gains["last_value"] == pytest.approx(2.0, rel=0.1)

    def test_ar1_signal_is_predictable(self):
        rng = np.random.default_rng(1)
        values = np.zeros(5000)
        for i in range(1, 5000):
            values[i] = 0.9 * values[i - 1] + rng.normal()
        gains = prediction_gains(values, warmup=500)
        assert gains["ar1"] < 0.5
        assert gains["last_value"] < 0.5

    def test_measured_vrd_series_unpredictable(self, module, reference_config):
        from repro.core.rdt import FastRdtMeter

        series = FastRdtMeter(module).measure_series(
            210, reference_config, 4000
        )
        gains = prediction_gains(series.valid)
        for name, gain in gains.items():
            assert gain > 0.85, name

    def test_validation(self):
        with pytest.raises(MeasurementError):
            prediction_gains(np.arange(5.0))
        with pytest.raises(MeasurementError):
            prediction_gains(np.full(100, 3.0))


class TestRecordMinima:
    def test_monotone_series(self):
        analysis = record_minima(np.arange(100.0, 0.0, -1.0))
        assert analysis.n_records == 100

    def test_increasing_series_single_record(self):
        analysis = record_minima(np.arange(1.0, 101.0))
        assert analysis.record_indices == [0]

    def test_iid_record_count_near_harmonic(self):
        rng = np.random.default_rng(2)
        counts = [
            record_minima(rng.normal(0, 1, 2000)).n_records
            for _ in range(60)
        ]
        expected = record_minima(rng.normal(0, 1, 2000)).expected_records_iid
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)

    def test_quantized_series_fewer_records(self):
        """Grid quantization merges values, so measured VRD series set
        fewer records than continuous i.i.d. — but still more than one."""
        rng = np.random.default_rng(3)
        values = np.round(rng.normal(1000, 10, 2000))
        analysis = record_minima(values)
        assert 1 < analysis.n_records < analysis.expected_records_iid

    def test_records_up_to(self):
        values = np.array([5.0, 4.0, 6.0, 3.0] + [7.0] * 8)
        analysis = record_minima(values)
        assert analysis.records_up_to(2) == 2
        assert analysis.records_up_to(4) == 3
        assert analysis.records_up_to(12) == 3

    def test_stopping_time_quantiles(self):
        rng = np.random.default_rng(4)
        analyses = [
            record_minima(rng.normal(0, 1, 1000)) for _ in range(50)
        ]
        quantiles = stopping_time_quantiles(analyses)
        assert quantiles[0.5] <= quantiles[0.9] <= quantiles[0.99]
        with pytest.raises(MeasurementError):
            stopping_time_quantiles([])
