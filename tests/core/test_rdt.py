"""Tests for Algorithm 1: sweeps, meters, victim selection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bender.host import DramBender
from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0
from repro.core.rdt import (
    FastRdtMeter,
    HammerSweep,
    RdtMeter,
    find_victim,
)
from repro.errors import MeasurementError
from tests.conftest import make_module


REF = TestConfig(CHECKERED0, t_agg_on_ns=35.0)


class TestHammerSweep:
    def test_from_guess_matches_algorithm1(self):
        sweep = HammerSweep.from_guess(2000.0)
        assert sweep.start == 1000.0
        assert sweep.stop == 6000.0
        assert sweep.step == 20.0
        assert sweep.n_points == 250

    def test_grid_monotone_and_rounded(self):
        grid = HammerSweep.from_guess(3333.0).grid()
        assert np.all(np.diff(grid) > 0)
        assert np.all(grid == np.round(grid))

    def test_quantize_semantics(self):
        sweep = HammerSweep(start=100.0, stop=200.0, step=10.0)
        measured = sweep.quantize(np.array([95.0, 100.0, 101.0, 195.0, 300.0]))
        assert measured[0] == 100.0  # below grid: first trial flips
        assert measured[1] == 100.0  # exactly at a grid point
        assert measured[2] == 110.0  # rounds up to the next trial
        assert np.isnan(measured[4])  # beyond the sweep: no flip recorded

    def test_invalid_sweeps(self):
        with pytest.raises(MeasurementError):
            HammerSweep(100.0, 50.0, 10.0)
        with pytest.raises(MeasurementError):
            HammerSweep(100.0, 200.0, 0.0)
        with pytest.raises(MeasurementError):
            HammerSweep.from_guess(0.0)

    @given(
        guess=st.floats(min_value=100.0, max_value=1e6),
        latent=st.floats(min_value=1.0, max_value=5e6),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantize_property(self, guess, latent):
        sweep = HammerSweep.from_guess(guess)
        measured = float(sweep.quantize(np.array([latent]))[0])
        grid = sweep.grid()
        if np.isnan(measured):
            assert latent > grid[-1]
        else:
            assert measured in grid
            assert measured >= min(latent, grid[0])
            # The measured value is the first grid point >= latent.
            earlier = grid[grid < measured]
            assert all(point < latent for point in earlier)


class TestFastRdtMeter:
    def test_series_reproducible(self, module):
        meter = FastRdtMeter(module)
        a = meter.measure_series(100, REF, 200)
        b = meter.measure_series(100, REF, 200)
        assert np.array_equal(a.values, b.values, equal_nan=True)

    def test_series_metadata(self, module):
        series = FastRdtMeter(module).measure_series(100, REF, 50)
        assert series.module_id == module.module_id
        assert series.row == 100
        assert series.grid_step > 0

    def test_guess_near_series_mean(self, module):
        meter = FastRdtMeter(module)
        guess = meter.guess_rdt(100, REF)
        series = meter.measure_series(100, REF, 500)
        assert guess == pytest.approx(series.mean, rel=0.1)


class TestBenderMeter:
    def test_measure_series_agrees_with_fast_path(self, module):
        """The two meters sample the same process: their series must agree
        in location and scale."""
        fast = FastRdtMeter(module).measure_series(100, REF, 400)
        bender = DramBender(module)
        meter = RdtMeter(bender)
        slow = meter.measure_series(100, REF, 25)
        assert slow.mean == pytest.approx(fast.mean, rel=0.05)
        assert slow.min >= fast.min * 0.9
        assert slow.max <= fast.max * 1.1

    def test_measure_returns_trial_count(self, module):
        bender = DramBender(module)
        meter = RdtMeter(bender)
        guess = meter.guess_rdt(100, REF)
        sweep = __import__("repro.core.rdt", fromlist=["HammerSweep"]).HammerSweep.from_guess(guess)
        outcome = meter.measure(100, REF, sweep)
        assert outcome.trials >= 1
        assert not np.isnan(outcome.value)
        assert outcome.flipped_bits

    def test_unflippable_row_raises(self):
        module = make_module(mean_rdt=5e7)
        module.disable_interference_sources()
        meter = RdtMeter(DramBender(module))
        with pytest.raises(MeasurementError):
            meter.guess_rdt(100, REF)


class TestFindVictim:
    def test_selects_first_vulnerable_row(self, module):
        meter = FastRdtMeter(module)
        guess, victim = find_victim(meter, rows=range(50), threshold=40_000)
        assert 0 <= victim < 50
        assert guess < 40_000

    def test_threshold_excludes_strong_rows(self, module):
        meter = FastRdtMeter(module)
        with pytest.raises(MeasurementError):
            find_victim(meter, rows=range(10), threshold=1.0)

    def test_batched_path_matches_per_row_scan(self, module):
        # The FastRdtMeter route goes through guess_rdt_batch; it must
        # return the same first qualifying row and the same guess as a
        # naive per-row guess_rdt scan.
        meter = FastRdtMeter(module)
        threshold = 40_000.0
        guess, victim = find_victim(
            meter, rows=range(50), config=REF, threshold=threshold
        )
        for row in range(50):
            expected = meter.guess_rdt(row, REF)
            if expected < threshold:
                assert victim == row
                assert guess == expected
                break

    def test_batching_spans_chunk_boundaries(self, module, monkeypatch):
        # Force tiny chunks so a victim beyond the first chunk exercises
        # the chunk loop; the answer must not change.
        import repro.core.rdt as rdt_module

        meter = FastRdtMeter(module)
        full = find_victim(meter, rows=range(50), threshold=40_000)
        monkeypatch.setattr(rdt_module, "FIND_VICTIM_CHUNK", 7)
        chunked = find_victim(meter, rows=range(50), threshold=40_000)
        assert chunked == full
