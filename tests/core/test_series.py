"""Tests for RdtSeries statistics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.series import RdtSeries
from repro.errors import MeasurementError


def make(values):
    return RdtSeries(np.asarray(values, dtype=float), module_id="T")


def test_basic_stats():
    series = make([100, 110, 90, 100])
    assert series.min == 90
    assert series.max == 110
    assert series.mean == 100
    assert series.max_to_min_ratio == pytest.approx(110 / 90)
    assert series.n_unique == 3
    assert series.min_count == 1


def test_nan_handling():
    series = make([100, np.nan, 90])
    assert len(series) == 3
    assert series.n_failed_sweeps == 1
    assert series.min == 90


def test_all_nan_raises():
    series = make([np.nan, np.nan])
    with pytest.raises(MeasurementError):
        _ = series.min


def test_first_min_index():
    series = make([5, 4, 6, 4, 7])
    assert series.first_min_index() == 1


def test_is_constant():
    assert make([7, 7, 7]).is_constant()
    assert not make([7, 8]).is_constant()


def test_windowed_views():
    values = np.concatenate([np.full(10, 5.0), np.full(10, 9.0)])
    windows = make(values).windowed(window=10)
    assert windows == [(5.0, 5.0, 5.0), (9.0, 9.0, 9.0)]
    with pytest.raises(MeasurementError):
        make(values).windowed(0)


def test_describe_mentions_key_stats():
    text = make([100, 110]).describe()
    assert "min=100" in text and "max=110" in text


def test_two_dimensional_rejected():
    with pytest.raises(MeasurementError):
        RdtSeries(np.zeros((2, 2)))


@given(
    st.lists(
        st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=200,
    )
)
def test_invariants_property(values):
    series = make(values)
    tolerance = 1e-9 * max(abs(series.min), abs(series.max), 1.0)
    assert series.min - tolerance <= series.mean <= series.max + tolerance
    assert series.cv >= 0
    assert series.max_to_min_ratio >= 1.0
    assert 1 <= series.n_unique <= len(values)
    assert 1 <= series.min_count <= len(values)
    assert 0 <= series.first_min_index() < len(values)
