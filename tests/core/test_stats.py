"""Tests for the Sec. 4 statistical analyses."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import stats
from repro.errors import MeasurementError


class TestRunLengths:
    def test_basic(self):
        lengths = stats.run_lengths(np.array([5.0, 5.0, 7.0, 5.0]))
        assert list(lengths) == [2, 1, 1]

    def test_empty(self):
        assert stats.run_lengths(np.array([])).size == 0

    def test_histogram(self):
        hist = stats.run_length_histogram(np.array([1.0, 1.0, 2.0, 2.0, 3.0]))
        assert hist == {1: 1, 2: 2}

    @given(
        st.lists(st.sampled_from([1.0, 2.0, 3.0]), min_size=1, max_size=300)
    )
    def test_lengths_sum_to_series_length(self, values):
        lengths = stats.run_lengths(np.array(values))
        assert lengths.sum() == len(values)
        assert np.all(lengths >= 1)

    def test_fraction_single_changes(self):
        # Alternating series: every run has length 1.
        values = np.array([1.0, 2.0] * 50)
        assert stats.fraction_single_measurement_changes(values) == 1.0
        with pytest.raises(MeasurementError):
            stats.fraction_single_measurement_changes(np.array([]))


class TestHistogram:
    def test_unique_bins(self):
        values = np.array([1.0, 2.0, 2.0, 4.0])
        counts, edges = stats.histogram_unique_bins(values)
        assert counts.sum() == 4
        assert len(counts) == 3  # three unique values -> three bins

    def test_constant_series(self):
        counts, edges = stats.histogram_unique_bins(np.array([5.0, 5.0]))
        assert list(counts) == [2]

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            stats.histogram_unique_bins(np.array([np.nan]))


class TestChiSquare:
    def test_normal_data_not_rejected(self):
        rng = np.random.default_rng(0)
        # Discrete (quantized) normal like a measured RDT series.
        values = np.round(rng.normal(1000, 10, 5000))
        _, p = stats.chi_square_normal_fit(values)
        assert p > 0.05

    def test_bimodal_data_rejected(self):
        rng = np.random.default_rng(1)
        values = np.round(
            np.concatenate(
                [rng.normal(900, 5, 2500), rng.normal(1100, 5, 2500)]
            )
        )
        _, p = stats.chi_square_normal_fit(values)
        assert p < 0.01

    def test_constant_rejected(self):
        with pytest.raises(MeasurementError):
            stats.chi_square_normal_fit(np.full(100, 7.0))

    def test_too_small_sample(self):
        with pytest.raises(MeasurementError):
            stats.chi_square_normal_fit(np.array([1.0, 2.0, 3.0]))


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(2)
        acf = stats.autocorrelation(rng.normal(0, 1, 1000), max_lag=10)
        assert acf[0] == 1.0

    def test_white_noise_within_bounds(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, 10_000)
        assert stats.acf_indistinguishable_from_noise(values, max_lag=50)

    def test_periodic_signal_detected(self):
        t = np.arange(2000)
        values = np.sin(2 * np.pi * t / 20)
        assert not stats.acf_indistinguishable_from_noise(values, max_lag=50)

    def test_ar1_detected(self):
        rng = np.random.default_rng(4)
        values = np.zeros(5000)
        for i in range(1, 5000):
            values[i] = 0.9 * values[i - 1] + rng.normal()
        assert not stats.acf_indistinguishable_from_noise(values, max_lag=50)

    def test_bounds_and_errors(self):
        assert stats.white_noise_acf_bound(10_000) == pytest.approx(0.0196, abs=1e-3)
        with pytest.raises(MeasurementError):
            stats.autocorrelation(np.array([1.0]), max_lag=1)
        with pytest.raises(MeasurementError):
            stats.autocorrelation(np.full(100, 3.0), max_lag=5)


def _fig06_like_series(rng, n=3000, nan_fraction=0.02):
    """A grid-quantized RDT series with failed-sweep NaNs, like the Fig. 6
    input: values snap to a hammer-sweep step grid."""
    values = np.round(rng.normal(4000.0, 40.0, n) / 16.0) * 16.0
    failed = rng.random(n) < nan_fraction
    values[failed] = np.nan
    return values


class TestFftAutocorrelation:
    """The FFT path must reproduce the direct estimator to float tolerance."""

    @pytest.mark.parametrize("max_lag", [1, 7, 50, 200])
    def test_matches_direct_formula_on_fig06_inputs(self, max_lag):
        rng = np.random.default_rng(6)
        values = _fig06_like_series(rng)
        data = values[~np.isnan(values)]
        centered = data - data.mean()
        variance = float(np.dot(centered, centered))
        direct = stats._autocorrelation_direct(centered, variance, max_lag)
        fft = stats.autocorrelation(values, max_lag=max_lag)
        np.testing.assert_allclose(fft, direct, rtol=1e-9, atol=1e-12)

    def test_matches_direct_on_correlated_series(self):
        rng = np.random.default_rng(8)
        values = np.zeros(4000)
        for i in range(1, len(values)):
            values[i] = 0.8 * values[i - 1] + rng.normal()
        centered = values - values.mean()
        variance = float(np.dot(centered, centered))
        direct = stats._autocorrelation_direct(centered, variance, 100)
        fft = stats.autocorrelation(values, max_lag=100)
        np.testing.assert_allclose(fft, direct, rtol=1e-9, atol=1e-12)

    def test_ljung_box_matches_per_lag_sum(self):
        rng = np.random.default_rng(9)
        values = _fig06_like_series(rng)
        lags = 20
        q, p = stats.ljung_box_test(values, lags=lags)
        data = values[~np.isnan(values)]
        n = data.size
        acf = stats.autocorrelation(data, max_lag=lags)
        expected_q = n * (n + 2.0) * sum(
            float(acf[lag]) ** 2 / (n - lag) for lag in range(1, lags + 1)
        )
        assert q == pytest.approx(expected_q, rel=1e-12)
        assert 0.0 <= p <= 1.0


class TestBoxStats:
    def test_quartiles(self):
        box = stats.box_stats(np.arange(1, 101, dtype=float))
        assert box.minimum == 1 and box.maximum == 100
        assert box.median == pytest.approx(50.5)
        assert box.iqr == pytest.approx(49.5)

    def test_cv(self):
        values = np.array([90.0, 100.0, 110.0])
        expected = values.std() / values.mean()
        assert stats.coefficient_of_variation(values) == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            stats.box_stats(np.array([]))
