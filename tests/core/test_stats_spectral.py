"""Tests for the spectral/portmanteau unpredictability statistics."""

import numpy as np
import pytest

from repro.core import stats
from repro.errors import MeasurementError


class TestLjungBox:
    def test_white_noise_not_rejected(self):
        rng = np.random.default_rng(0)
        _, p = stats.ljung_box_test(rng.normal(0, 1, 5000), lags=20)
        assert p > 0.01

    def test_ar1_rejected(self):
        rng = np.random.default_rng(1)
        values = np.zeros(3000)
        for i in range(1, 3000):
            values[i] = 0.6 * values[i - 1] + rng.normal()
        _, p = stats.ljung_box_test(values, lags=20)
        assert p < 1e-6

    def test_measured_vrd_series_passes(self, module, reference_config):
        from repro.core.rdt import FastRdtMeter

        series = FastRdtMeter(module).measure_series(
            150, reference_config, 3000
        )
        _, p = stats.ljung_box_test(series.valid, lags=20)
        assert p > 0.001  # unpredictable, like the paper's Finding 4

    def test_validation(self):
        with pytest.raises(MeasurementError):
            stats.ljung_box_test(np.arange(5.0), lags=10)
        with pytest.raises(MeasurementError):
            stats.ljung_box_test(np.arange(100.0), lags=0)


class TestPeriodogram:
    def test_flat_for_noise_peaked_for_sine(self):
        rng = np.random.default_rng(2)
        noise_flatness = stats.spectral_flatness(rng.normal(0, 1, 4096))
        t = np.arange(4096)
        sine = np.sin(2 * np.pi * t / 32) + 0.01 * rng.normal(0, 1, 4096)
        sine_flatness = stats.spectral_flatness(sine)
        assert noise_flatness > 0.3
        assert sine_flatness < noise_flatness / 3

    def test_periodogram_peak_location(self):
        t = np.arange(1024)
        values = np.sin(2 * np.pi * t / 16)
        freqs, power = stats.periodogram(values)
        assert freqs[np.argmax(power)] == pytest.approx(1 / 16, abs=1e-3)

    def test_vrd_series_is_spectrally_flat(self, module, reference_config):
        from repro.core.rdt import FastRdtMeter

        series = FastRdtMeter(module).measure_series(
            150, reference_config, 4096
        )
        rng = np.random.default_rng(3)
        reference = stats.spectral_flatness(rng.normal(0, 1, 4096))
        measured = stats.spectral_flatness(series.valid)
        assert measured > reference * 0.6

    def test_too_short(self):
        with pytest.raises(MeasurementError):
            stats.periodogram(np.arange(4.0))
