"""Tests for JSON persistence of series and campaigns."""

import numpy as np
import pytest

from repro.core.campaign import Campaign
from repro.core.config import TestConfig, standard_configs
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.core.series import RdtSeries
from repro.core import store
from repro.errors import MeasurementError


def make_campaign(module):
    configs = list(
        standard_configs(
            module.timing,
            patterns=ALL_PATTERNS[:2],
            temperatures=(50.0,),
            t_agg_on_values=(module.timing.tRAS,),
        )
    )
    return Campaign(module, configs, n_measurements=100).run([10, 20])


def test_series_roundtrip_with_nans():
    series = RdtSeries(
        np.array([100.0, np.nan, 120.0]),
        module_id="T", bank=1, row=7, config_label="x", grid_step=2.0,
    )
    restored = store.series_from_dict(store.series_to_dict(series))
    assert np.array_equal(restored.values, series.values, equal_nan=True)
    assert restored.module_id == "T"
    assert restored.row == 7
    assert restored.grid_step == 2.0


def test_config_roundtrip():
    config = TestConfig(
        CHECKERED0, t_agg_on_ns=7800.0, temperature_c=65.0,
        wordline_voltage_v=2.2,
    )
    restored = store.config_from_dict(store.config_to_dict(config))
    assert restored == config


def test_config_voltage_defaults_when_absent():
    payload = {
        "pattern": "checkered0", "t_agg_on_ns": 35.0, "temperature_c": 50.0,
    }
    assert store.config_from_dict(payload).wordline_voltage_v == 2.5


def test_campaign_roundtrip_preserves_metrics(module, tmp_path):
    result = make_campaign(module)
    path = tmp_path / "campaign.json"
    store.save_campaign(result, path)
    restored = store.load_campaign(path)
    assert restored.module_id == result.module_id
    assert len(restored) == len(result)
    assert restored.max_cv_per_row() == result.max_cv_per_row()
    original = result.expected_normalized_min_distribution(1)
    roundtripped = restored.expected_normalized_min_distribution(1)
    assert np.allclose(original, roundtripped)


def test_version_check(module, tmp_path):
    result = make_campaign(module)
    payload = store.campaign_to_dict(result)
    payload["format_version"] = 999
    with pytest.raises(MeasurementError):
        store.campaign_from_dict(payload)


def test_malformed_inputs(tmp_path):
    with pytest.raises(MeasurementError):
        store.series_from_dict({"values": "nope"})
    with pytest.raises(MeasurementError):
        store.config_from_dict({"pattern": "checkered0"})
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(MeasurementError):
        store.load_campaign(bad)
