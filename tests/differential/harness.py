"""Unified fast-path/oracle differential harness.

Every fast path in this codebase carries the same promise: *bit-identical*
results to a scalar oracle. Each subsystem already asserts its own pair in
its own test file; this harness gives all of them one uniform shape — one
seed builds one workload, the workload runs down both paths, and each
outcome is reduced to a plain hashable fingerprint — so a single
parametrized test sweeps every pair over randomized seeds, and a tracing
on/off run of the same case proves instrumentation never perturbs results.

The pairs covered:

==================  ==================================  =========================
name                oracle                              fast path
==================  ==================================  =========================
engine              serial ``Campaign.run``             ``CampaignEngine`` (2 jobs)
memsim              ``MemorySystem.run``                ``memsim.fastcore.run_fast``
fastfaults          per-row ``RowVrdProcess``           packed ``BankVrdState``
bender              scalar ``Interpreter`` trials       compiled trial replay
ecc                 per-codeword encode/decode          ``encode_batch``/``decode_batch``
adaptive            serial ``AdaptiveScheduler``        ``CampaignEngine`` adaptive (2 jobs)
store               legacy file-per-entry caches        sqlite ``ResultStore`` shims
fleet               ``run_fleet_naive`` (materialized)  ``run_fleet`` streamed (2 jobs)
==================  ==================================  =========================

Cross-protocol variants rerun the fastfaults and bender pairs on catalog
devices whose geometry exercises DDR5 bank groups (``D0``) and HBM2
pseudo channels (``Chip0``); the ``checker-*`` pairs run the same
workload with ``VRD_TIMING_CHECK=1`` forced on versus off, proving the
opt-in timing validation pass never perturbs a single bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

#: Deterministically randomized seeds: drawn from a fixed-seed PRNG so runs
#: are reproducible while still exercising arbitrary workload shapes.
SEEDS: List[int] = random.Random(0x56524431).sample(range(1, 100_000), 3)


@dataclass(frozen=True)
class DifferentialCase:
    """One fast-path/oracle pair under the unified harness."""

    name: str
    oracle: Callable[[int], object]
    fast: Callable[[int], object]


# ----------------------------------------------------------------------
# engine: serial campaign loop vs parallel campaign engine
# ----------------------------------------------------------------------

_ENGINE_ROWS = [3, 17, 40]
_ENGINE_N = 25


def _engine_workload(seed: int):
    from repro.chips import build_module
    from repro.core import CHECKERED0, TestConfig

    module = build_module("M1", seed=seed)
    module.disable_interference_sources()
    configs = [TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)]
    return module, configs


def _campaign_fingerprint(result) -> tuple:
    return tuple(
        (
            observation.bank,
            observation.row,
            observation.config.label(),
            tuple(observation.series.values.tolist()),
            observation.series.grid_step,
        )
        for observation in result.observations
    )


def engine_oracle(seed: int) -> tuple:
    from repro.core.campaign import Campaign

    module, configs = _engine_workload(seed)
    campaign = Campaign(module, configs, n_measurements=_ENGINE_N)
    return _campaign_fingerprint(campaign.run(_ENGINE_ROWS))


def engine_fast(seed: int) -> tuple:
    from repro.core.engine import CampaignEngine

    module, configs = _engine_workload(seed)
    engine = CampaignEngine(
        "M1", configs, n_measurements=_ENGINE_N, seed=seed, n_jobs=2,
    )
    return _campaign_fingerprint(engine.run(_ENGINE_ROWS))


# ----------------------------------------------------------------------
# memsim: reference request loop vs epoch-batched fast core
# ----------------------------------------------------------------------

_MEMSIM_MITIGATIONS = ["Graphene", "PRAC", "PARA", "MINT", "BlockHammer"]


def _memsim_workload(seed: int):
    from repro.memsim.system import MemorySystem, SystemConfig
    from repro.memsim.trace import standard_mixes
    from repro.mitigations import build_mitigation

    pick = random.Random(seed)
    mix = pick.choice(standard_mixes(3))
    name = pick.choice(_MEMSIM_MITIGATIONS)
    threshold = pick.choice([256.0, 1024.0])
    config = SystemConfig(window_ns=5_000.0, seed=seed)
    return MemorySystem(mix, config, build_mitigation(name, threshold))


def _memsim_fingerprint(result) -> tuple:
    return (
        result.mix_name,
        result.mitigation_name,
        tuple(result.requests_per_core),
        tuple(result.total_latency_per_core),
        result.row_hits,
        result.row_misses,
        result.preventive_refreshes,
        result.rank_blocks,
    )


def memsim_oracle(seed: int) -> tuple:
    return _memsim_fingerprint(_memsim_workload(seed).run())


def memsim_fast(seed: int) -> tuple:
    return _memsim_fingerprint(_memsim_workload(seed).run_fast())


# ----------------------------------------------------------------------
# fastfaults: per-row scalar VRD processes vs packed bank state
# ----------------------------------------------------------------------

_FAULT_SERIES_N = 40


def _fault_workload(seed: int):
    from tests.conftest import make_module

    module = make_module("DIFF", seed=seed)
    module.disable_interference_sources()
    pick = random.Random(seed + 1)
    rows = sorted(pick.sample(range(module.geometry.n_rows), 4))
    from repro.core import CHECKERED0, TestConfig

    config = TestConfig(
        CHECKERED0,
        t_agg_on_ns=module.timing.tRAS,
        temperature_c=pick.choice([50.0, 80.0]),
    )
    return module, rows, config.condition(module.timing)


def fastfaults_oracle(seed: int) -> tuple:
    module, rows, condition = _fault_workload(seed)
    model = module.fault_model
    return tuple(
        tuple(
            model.process(0, row)
            .latent_series(condition, _FAULT_SERIES_N)
            .tolist()
        )
        for row in rows
    )


def fastfaults_fast(seed: int) -> tuple:
    module, rows, condition = _fault_workload(seed)
    matrix = module.fault_model.latent_series_bank(
        0, rows, condition, _FAULT_SERIES_N
    )
    return tuple(tuple(series.tolist()) for series in matrix)


def _catalog_fault_workload(seed: int, module_id: str):
    """Like :func:`_fault_workload` but on a catalog device, so the pair
    runs under the device's real protocol geometry (DDR5 bank groups,
    HBM2 pseudo channels)."""
    from repro.chips import build_module
    from repro.core import CHECKERED0, TestConfig

    module = build_module(module_id, seed=seed)
    module.disable_interference_sources()
    pick = random.Random(seed + 7)
    rows = sorted(pick.sample(range(module.geometry.n_rows), 4))
    config = TestConfig(
        CHECKERED0,
        t_agg_on_ns=module.timing.tRAS,
        temperature_c=pick.choice([50.0, 80.0]),
    )
    return module, rows, config.condition(module.timing)


def _catalog_fault_series(seed: int, module_id: str, fast: bool) -> tuple:
    module, rows, condition = _catalog_fault_workload(seed, module_id)
    model = module.fault_model
    if fast:
        matrix = model.latent_series_bank(
            0, rows, condition, _FAULT_SERIES_N
        )
        return tuple(tuple(series.tolist()) for series in matrix)
    return tuple(
        tuple(
            model.process(0, row)
            .latent_series(condition, _FAULT_SERIES_N)
            .tolist()
        )
        for row in rows
    )


def fastfaults_ddr5_oracle(seed: int) -> tuple:
    return _catalog_fault_series(seed, "D0", fast=False)


def fastfaults_ddr5_fast(seed: int) -> tuple:
    return _catalog_fault_series(seed, "D0", fast=True)


def fastfaults_hbm2_oracle(seed: int) -> tuple:
    return _catalog_fault_series(seed, "Chip0", fast=False)


def fastfaults_hbm2_fast(seed: int) -> tuple:
    return _catalog_fault_series(seed, "Chip0", fast=True)


# ----------------------------------------------------------------------
# bender: scalar interpreter trials vs compiled replay
# ----------------------------------------------------------------------

def _bender_trials(
    seed: int, compiled: bool, module_id: "str | None" = None
) -> tuple:
    """Interpreter/compiled trial fingerprint.

    ``module_id`` selects a catalog device (protocol, timing table, and
    bank-group topology included); ``None`` keeps the small ad-hoc DDR4
    module the original case was tuned for.
    """
    from repro.bender.host import DramBender
    from repro.core import CHECKERED0, TestConfig

    pick = random.Random(seed + 3)
    victim = pick.randrange(50, 200)
    if module_id is None:
        from tests.conftest import make_module

        # Straddle the small module's ~2000-activation mean RDT so some
        # trials flip and some survive, with seed-dependent counts.
        counts = sorted(pick.sample(range(500, 8000), 3)) + [12_000]
        module = make_module(seed=seed)
    else:
        from repro.chips import build_module, spec

        # Same idea, scaled to the device's catalog RDT floor.
        floor = int(spec(module_id).min_rdt_tras)
        counts = sorted(
            pick.sample(range(floor // 3, floor + floor // 5), 3)
        ) + [3 * floor]
        module = build_module(module_id, seed=seed)
    module.disable_interference_sources()
    bender = DramBender(module)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    bender.begin_measurement(0, victim, config.pattern, config.t_agg_on_ns)
    flips = tuple(
        tuple(bender.run_trial(
            0, victim, config.pattern, count, config.t_agg_on_ns,
            compiled=compiled,
        ))
        for count in counts
    )
    totals = tuple(sorted(bender.interpreter.total_counts.items()))
    return flips, bender.interpreter.now, totals


def bender_oracle(seed: int) -> tuple:
    return _bender_trials(seed, compiled=False)


def bender_fast(seed: int) -> tuple:
    return _bender_trials(seed, compiled=True)


def bender_ddr5_oracle(seed: int) -> tuple:
    return _bender_trials(seed, compiled=False, module_id="D0")


def bender_ddr5_fast(seed: int) -> tuple:
    return _bender_trials(seed, compiled=True, module_id="D0")


def bender_hbm2_oracle(seed: int) -> tuple:
    return _bender_trials(seed, compiled=False, module_id="Chip0")


def bender_hbm2_fast(seed: int) -> tuple:
    return _bender_trials(seed, compiled=True, module_id="Chip0")


# ----------------------------------------------------------------------
# checker: timing validation on vs off must be invisible in results
# ----------------------------------------------------------------------

def _checked(workload: Callable[[int], tuple], seed: int) -> tuple:
    """Run ``workload`` with ``VRD_TIMING_CHECK=1`` forced on — results
    must match the unchecked run bit for bit (and legal streams must not
    raise)."""
    import os

    from repro.dram.checker import TIMING_CHECK_ENV_VAR

    previous = os.environ.get(TIMING_CHECK_ENV_VAR)
    os.environ[TIMING_CHECK_ENV_VAR] = "1"
    try:
        return workload(seed)
    finally:
        if previous is None:
            del os.environ[TIMING_CHECK_ENV_VAR]
        else:
            os.environ[TIMING_CHECK_ENV_VAR] = previous


def checker_bender_oracle(seed: int) -> tuple:
    return _bender_trials(seed, compiled=True, module_id="D0")


def checker_bender_fast(seed: int) -> tuple:
    return _checked(
        lambda s: _bender_trials(s, compiled=True, module_id="D0"), seed
    )


def checker_memsim_oracle(seed: int) -> tuple:
    return memsim_oracle(seed)


def checker_memsim_fast(seed: int) -> tuple:
    return _checked(memsim_oracle, seed)


# ----------------------------------------------------------------------
# adaptive: serial scheduler vs sharded engine adaptive mode
# ----------------------------------------------------------------------

_ADAPTIVE_N_MAX = 100


def _adaptive_workload(seed: int):
    from repro.core import AdaptiveConfig

    pick = random.Random(seed + 4)
    rows = sorted(pick.sample(range(256), 4))
    adaptive = AdaptiveConfig(
        max_measurements=_ADAPTIVE_N_MAX,
        budget=pick.choice([None, 400]),
    )
    return rows, adaptive


def _adaptive_fingerprint(result) -> tuple:
    return (
        result.rounds,
        result.budget_reallocations,
        tuple(
            (
                estimate.bank,
                estimate.row,
                estimate.config.label(),
                estimate.estimate,
                estimate.ci_half_width,
                estimate.n_measured,
                estimate.trials,
                estimate.stopping_reason,
            )
            for estimate in result.estimates
        ),
    )


def adaptive_oracle(seed: int) -> tuple:
    from repro.core import AdaptiveScheduler

    module, configs = _engine_workload(seed)
    rows, adaptive = _adaptive_workload(seed)
    scheduler = AdaptiveScheduler(module, configs, adaptive)
    return _adaptive_fingerprint(scheduler.run(rows))


def adaptive_fast(seed: int) -> tuple:
    from repro.core.engine import CampaignEngine

    _, configs = _engine_workload(seed)
    rows, adaptive = _adaptive_workload(seed)
    engine = CampaignEngine(
        "M1", configs, n_measurements=_ADAPTIVE_N_MAX, seed=seed,
        n_jobs=2, schedule="adaptive", adaptive=adaptive,
    )
    return _adaptive_fingerprint(engine.run(rows))


# ----------------------------------------------------------------------
# ecc: scalar per-codeword decode vs vectorized batch decode
# ----------------------------------------------------------------------

_ECC_TRIALS = 4096


class _ScalarOnly:
    """Hides ``encode_batch``/``decode_batch`` to force the scalar path."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name in ("encode_batch", "decode_batch"):
            raise AttributeError(name)
        return getattr(self._inner, name)


def _ecc_outcomes(seed: int, scalar: bool) -> tuple:
    import numpy as np

    from repro.ecc.analysis import default_codec, monte_carlo_outcomes

    pick = random.Random(seed + 2)
    code = default_codec(pick.choice(["SEC", "SECDED", "SSC"]))
    ber = pick.choice([5e-5, 2e-4, 1e-3])
    if scalar:
        code = _ScalarOnly(code)
    outcome = monte_carlo_outcomes(
        code, ber, trials=_ECC_TRIALS, rng=np.random.default_rng(seed)
    )
    return (
        outcome.trials,
        outcome.uncorrectable,
        outcome.undetectable,
        outcome.detected,
    )


def ecc_oracle(seed: int) -> tuple:
    return _ecc_outcomes(seed, scalar=True)


def ecc_fast(seed: int) -> tuple:
    return _ecc_outcomes(seed, scalar=False)


# ----------------------------------------------------------------------
# store: legacy file-per-entry caches vs sqlite ResultStore shims
# ----------------------------------------------------------------------

_STORE_ROWS = [3, 11]
_STORE_N = 10


def _store_workloads(seed: int):
    """One (campaign, adaptive, sweep) result triple per seed, computed
    once and round-tripped through both storage backends. Cached because
    the backends must see the *same* in-memory results — the case is
    about storage fidelity, not measurement."""
    cached = _STORE_WORKLOADS.get(seed)
    if cached is not None:
        return cached

    from repro.core import AdaptiveConfig
    from repro.core.engine import CampaignEngine
    from repro.memsim.sweep import SweepSpec, run_sweep

    _, configs = _engine_workload(seed)
    campaign = CampaignEngine(
        "M1", configs, n_measurements=_STORE_N, seed=seed, n_jobs=1,
    ).run(_STORE_ROWS)
    adaptive = CampaignEngine(
        "M1", configs, n_measurements=_STORE_N * 2, seed=seed, n_jobs=1,
        schedule="adaptive",
        adaptive=AdaptiveConfig(max_measurements=_STORE_N * 2),
    ).run(_STORE_ROWS)
    pick = random.Random(seed + 5)
    spec = SweepSpec(
        mitigations=("PARA",), rdts=(1024.0,),
        margins=(pick.choice([0.0, 0.25]),),
        n_mixes=1, window_ns=2_000.0, n_rows=1 << 8,
        seed=seed % 997 + 1,
    )
    sweep = run_sweep(spec)
    _STORE_WORKLOADS[seed] = (configs, campaign, adaptive, spec, sweep)
    return _STORE_WORKLOADS[seed]


_STORE_WORKLOADS: dict = {}


def _store_roundtrip(seed: int, backend: str) -> tuple:
    """Store the seed's three results through ``backend``, reload them,
    and fingerprint the reloaded payloads as canonical JSON."""
    import json
    import tempfile
    from pathlib import Path

    from repro.core.engine import CampaignCache
    from repro.core.store import campaign_to_dict
    from repro.memsim.sweep import SweepCache

    configs, campaign, adaptive, spec, sweep = _store_workloads(seed)
    pairs = [(0, row) for row in _STORE_ROWS]
    keyer = CampaignCache.resolve(".")  # key() is pure: no I/O
    campaign_key = keyer.key(
        seed=seed, module_id="M1", configs=configs,
        n_measurements=_STORE_N, pairs=pairs,
    )
    adaptive_key = keyer.key(
        seed=seed, module_id="M1", configs=configs,
        n_measurements=_STORE_N * 2, pairs=pairs,
        schedule="adaptive", adaptive=adaptive.adaptive,
    )

    with tempfile.TemporaryDirectory() as tmp:
        sweep_key = SweepCache(Path(tmp)).key(spec)
        if backend == "file":
            from repro.store.legacy import FileCampaignCache, FileSweepCache

            caches = FileCampaignCache(tmp), FileSweepCache(tmp)
        else:
            campaign_cache = CampaignCache(Path(tmp))
            caches = (
                campaign_cache,
                SweepCache(store=campaign_cache.result_store),
            )
        campaign_cache, sweep_cache = caches
        campaign_cache.store(campaign_key, campaign)
        campaign_cache.store_adaptive(adaptive_key, adaptive)
        sweep_cache.store(sweep_key, sweep)

        reloaded = {
            "campaign": campaign_to_dict(campaign_cache.load(campaign_key)),
            "adaptive": campaign_cache.load_adaptive(
                adaptive_key
            ).to_payload(),
            "sweep": sweep_cache.load(sweep_key).to_payload(),
        }
    return (json.dumps(reloaded, sort_keys=True),)


def store_oracle(seed: int) -> tuple:
    return _store_roundtrip(seed, "file")


def store_fast(seed: int) -> tuple:
    return _store_roundtrip(seed, "sqlite")


# ----------------------------------------------------------------------
# fleet: materialize-everything oracle vs streamed shard-merge runner
# ----------------------------------------------------------------------

def _fleet_spec(seed: int):
    from repro.fleet import FleetSpec

    pick = random.Random(seed + 6)
    return FleetSpec(
        n_modules=pick.choice([5, 9]),
        seed=seed,
        rows_per_module=2,
        n_measurements=pick.choice([6, 10]),
        shard_size=pick.choice([2, 3]),
    )


def _fleet_fingerprint(result) -> tuple:
    import json

    return (json.dumps(
        {"summary": result.summary,
         "margins": {f"{m:g}": v for m, v in sorted(result.margins.items())}},
        sort_keys=True,
    ),)


def fleet_oracle(seed: int) -> tuple:
    from repro.fleet import run_fleet_naive

    return _fleet_fingerprint(run_fleet_naive(_fleet_spec(seed)))


def fleet_fast(seed: int) -> tuple:
    from repro.fleet import run_fleet

    return _fleet_fingerprint(
        run_fleet(_fleet_spec(seed), n_jobs=2, checkpoint=False)
    )


# ----------------------------------------------------------------------

CASES: List[DifferentialCase] = [
    DifferentialCase("engine", engine_oracle, engine_fast),
    DifferentialCase("memsim", memsim_oracle, memsim_fast),
    DifferentialCase("fastfaults", fastfaults_oracle, fastfaults_fast),
    DifferentialCase(
        "fastfaults-ddr5", fastfaults_ddr5_oracle, fastfaults_ddr5_fast
    ),
    DifferentialCase(
        "fastfaults-hbm2", fastfaults_hbm2_oracle, fastfaults_hbm2_fast
    ),
    DifferentialCase("bender", bender_oracle, bender_fast),
    DifferentialCase("bender-ddr5", bender_ddr5_oracle, bender_ddr5_fast),
    DifferentialCase("bender-hbm2", bender_hbm2_oracle, bender_hbm2_fast),
    DifferentialCase(
        "checker-bender", checker_bender_oracle, checker_bender_fast
    ),
    DifferentialCase(
        "checker-memsim", checker_memsim_oracle, checker_memsim_fast
    ),
    DifferentialCase("ecc", ecc_oracle, ecc_fast),
    DifferentialCase("adaptive", adaptive_oracle, adaptive_fast),
    DifferentialCase("store", store_oracle, store_fast),
    DifferentialCase("fleet", fleet_oracle, fleet_fast),
]
