"""Adaptive scheduler vs exhaustive oracle, over randomized seeds.

Two contracts, asserted separately because they are different kinds of
equality:

* **Determinism** is exact: for a fixed seed, the serial
  :class:`~repro.core.adaptive.AdaptiveScheduler` and the engine's
  ``schedule="adaptive"`` mode at 1 and 4 workers produce bit-identical
  estimates (all scheduling decisions are central; per-row streams don't
  depend on sharding). The unified harness also sweeps the serial-vs-2-jobs
  pair in ``test_pairs.py``.
* **Accuracy** is statistical: each adaptive estimate must land within its
  *reported* confidence interval of the exhaustive oracle's mean —
  widened by the oracle mean's own sampling noise, since the oracle's
  ``max_measurements``-sample mean is itself an estimate of the same
  latent threshold. Fixed seeds make the assertion deterministic.
"""

import numpy as np
import pytest

from repro.core import (
    AdaptiveConfig,
    AdaptiveScheduler,
    CHECKERED0,
    FastRdtMeter,
    TestConfig,
)
from repro.core.engine import CampaignEngine
from tests.differential.harness import (
    SEEDS,
    _adaptive_fingerprint,
    adaptive_fast,
    adaptive_oracle,
)

_ROWS = [3, 17, 40, 100]
_N_MAX = 200


def _workload(seed: int):
    from repro.chips import build_module

    module = build_module("M1", seed=seed)
    module.disable_interference_sources()
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    return module, config


@pytest.mark.parametrize("seed", SEEDS)
def test_bit_identical_across_worker_counts(seed):
    module, config = _workload(seed)
    adaptive = AdaptiveConfig(max_measurements=_N_MAX)
    serial = _adaptive_fingerprint(
        AdaptiveScheduler(module, [config], adaptive).run(_ROWS)
    )
    engines = [
        _adaptive_fingerprint(
            CampaignEngine(
                "M1", [config], n_measurements=_N_MAX, seed=seed,
                n_jobs=jobs, schedule="adaptive", adaptive=adaptive,
            ).run(_ROWS)
        )
        for jobs in (1, 4)
    ]
    assert serial == engines[0] == engines[1]


@pytest.mark.parametrize("seed", SEEDS)
def test_estimates_within_reported_confidence_interval(seed):
    module, config = _workload(seed)
    result = AdaptiveScheduler(
        module, [config], AdaptiveConfig(max_measurements=_N_MAX)
    ).run(_ROWS)
    meter = FastRdtMeter(module, 0)
    module.set_temperature(config.temperature_c)
    for estimate in result.estimates:
        series = meter.measure_series(estimate.row, config, _N_MAX)
        oracle_mean = float(np.nanmean(series.values))
        oracle_std = float(np.nanstd(series.values))
        bound = estimate.ci_half_width + 3 * oracle_std / np.sqrt(_N_MAX)
        assert abs(estimate.estimate - oracle_mean) <= bound, (
            f"row {estimate.row}: adaptive {estimate.estimate:.1f} vs "
            f"oracle {oracle_mean:.1f} exceeds bound {bound:.1f}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_adaptive_spends_far_fewer_trials(seed):
    """The perf contract on arbitrary seeds, at a softer floor than the
    benchmark's (small workload; BENCH_adaptive.json guards >= 10x on the
    Fig. 1/Fig. 7-scale runs)."""
    module, config = _workload(seed)
    result = AdaptiveScheduler(
        module, [config], AdaptiveConfig(max_measurements=_N_MAX)
    ).run(_ROWS)
    assert result.trial_reduction_estimate >= 10


def test_harness_pair_agrees_on_budgeted_workloads():
    """The harness case randomizes rows and budget; spot-check one seed
    here so a budget-path divergence fails with a readable diff even if
    the parametrized sweep is filtered out."""
    seed = SEEDS[0]
    assert adaptive_oracle(seed) == adaptive_fast(seed)
