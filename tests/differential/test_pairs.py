"""Every fast-path/oracle pair, swept over randomized seeds.

Equality here is exact (``==`` on fingerprints of floats and ints), not
statistical: the fast paths consume the same seeded RNG streams draw for
draw as their oracles, so any drift is a bug.
"""

import pytest

from tests.differential.harness import CASES, SEEDS

CASE_IDS = [case.name for case in CASES]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_fast_path_matches_oracle(case, seed):
    assert case.fast(seed) == case.oracle(seed)


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_fingerprints_are_seed_sensitive(case):
    """The fingerprint actually captures the workload: two different seeds
    must not collapse to the same outcome (a degenerate fingerprint would
    make the equality tests vacuous)."""
    assert case.fast(SEEDS[0]) != case.fast(SEEDS[1])
