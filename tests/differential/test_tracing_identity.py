"""Tracing must be a pure observer: bit-identical results on or off.

The observability layer records wall/CPU clocks and plain counters only —
never anything from the seeded RNG streams. These tests run the same
differential workloads with tracing off, tracing on, and under
``VRD_TRACE=1`` in the environment (which worker processes inherit), and
require exactly equal fingerprints each way.
"""

import pytest

from repro import obs
from tests.differential.harness import CASES, SEEDS

CASE_IDS = [case.name for case in CASES]


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_tracing_on_is_bit_identical_to_off(case):
    seed = SEEDS[0]
    plain = case.fast(seed)
    with obs.tracing() as recorder:
        traced = case.fast(seed)
    assert traced == plain
    # The run must actually have been observed, not silently untraced.
    snapshot = recorder.snapshot()
    assert snapshot["counters"] or snapshot["spans"]


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_tracing_does_not_disturb_oracle_paths(case):
    seed = SEEDS[1]
    plain = case.oracle(seed)
    with obs.tracing():
        traced = case.oracle(seed)
    assert traced == plain


def test_trace_env_var_keeps_parallel_engine_identical(monkeypatch):
    """VRD_TRACE=1 is inherited by engine worker processes; shipping
    snapshots back alongside partial results must not change them."""
    case = CASES[0]
    assert case.name == "engine"
    seed = SEEDS[0]
    plain = case.fast(seed)
    monkeypatch.setenv(obs.TRACE_ENV_VAR, "1")
    with obs.tracing() as recorder:
        traced = case.fast(seed)
    assert traced == plain
    assert recorder.snapshot()["counters"].get("engine.units")
