"""Tests for the bank state machine: timings, stress, disturbance."""

import numpy as np
import pytest

from repro.errors import (
    CommandSequenceError,
    TimingViolationError,
)
from tests.conftest import make_module


REF_T = 1000.0


def open_row(module, bank, row, at):
    module.activate(bank, row, at)
    return at


def write_full(module, bank, row, byte, start):
    """ACT + write + PRE one row; returns the time after precharge."""
    t = module.timing
    module.activate(bank, row, start)
    write_at = start + t.tRCD + 127 * t.tCCD_L
    data = np.full(module.geometry.row_bytes, byte, dtype=np.uint8)
    module.write_row(bank, row, data, write_at)
    pre_at = write_at + t.tWR
    module.precharge(bank, pre_at)
    return pre_at + t.tRP + 1


class TestSequencing:
    def test_double_activate_rejected(self):
        module = make_module()
        module.activate(0, 5, REF_T)
        with pytest.raises(CommandSequenceError):
            module.activate(0, 6, REF_T + 1000)

    def test_column_access_requires_open_row(self):
        module = make_module()
        data = np.zeros(module.geometry.row_bytes, dtype=np.uint8)
        with pytest.raises(CommandSequenceError):
            module.write_row(0, 5, data, REF_T)
        module.activate(0, 5, REF_T)
        with pytest.raises(CommandSequenceError):
            module.write_row(0, 6, data, REF_T + 100)

    def test_precharge_idle_bank_is_noop(self):
        module = make_module()
        module.precharge(0, REF_T)  # must not raise

    def test_wrong_size_write_rejected(self):
        module = make_module()
        module.activate(0, 5, REF_T)
        with pytest.raises(CommandSequenceError):
            module.write_row(0, 5, np.zeros(3, dtype=np.uint8), REF_T + 100)


class TestTimings:
    def test_tras_violation(self):
        module = make_module()
        module.activate(0, 5, REF_T)
        with pytest.raises(TimingViolationError):
            module.precharge(0, REF_T + 1.0)

    def test_trp_violation(self):
        module = make_module()
        t = module.timing
        module.activate(0, 5, REF_T)
        module.precharge(0, REF_T + t.tRAS)
        with pytest.raises(TimingViolationError):
            module.activate(0, 6, REF_T + t.tRAS + 0.5 * t.tRP)

    def test_trcd_violation(self):
        module = make_module()
        module.activate(0, 5, REF_T)
        data = np.zeros(module.geometry.row_bytes, dtype=np.uint8)
        with pytest.raises(TimingViolationError):
            module.write_row(0, 5, data, REF_T + 1.0)

    def test_trc_violation(self):
        module = make_module()
        t = module.timing
        module.activate(0, 5, REF_T)
        module.precharge(0, REF_T + t.tRAS)
        # tRP satisfied but tRC not (tRC = tRAS + tRP; rounding margins).
        ok_at = REF_T + t.tRC
        module.activate(0, 6, ok_at)  # exactly legal


class TestDataPath:
    def test_write_then_read_roundtrip(self):
        module = make_module()
        module.disable_interference_sources()
        t = module.timing
        end = write_full(module, 0, 5, 0xA5, REF_T)
        module.activate(0, 5, end)
        data = module.read_row(0, 5, end + t.tRCD)
        assert np.all(data == 0xA5)

    def test_unwritten_row_has_stable_powerup_content(self):
        module = make_module()
        t = module.timing
        module.activate(0, 9, REF_T)
        first = module.read_row(0, 9, REF_T + t.tRCD)
        second = module.read_row(0, 9, REF_T + t.tRCD + 10)
        assert np.array_equal(first, second)


class TestStressAccounting:
    def test_bulk_hammer_counts(self):
        module = make_module()
        bank = module.bank(0)
        t = module.timing
        module.bulk_hammer(0, [99, 101], 50, t.tRAS, REF_T)
        stress = bank.stress_of(100)
        assert stress.below_acts == 50 and stress.above_acts == 50
        assert stress.mean_on_ns == pytest.approx(t.tRAS)

    def test_bulk_hammer_matches_manual_commands(self):
        manual = make_module(seed=77)
        bulk = make_module(seed=77)
        t = manual.timing
        now = REF_T
        for _ in range(10):
            for row in (99, 101):
                manual.activate(0, row, now)
                now += t.tRAS
                manual.precharge(0, now)
                now += t.tRP
        end = bulk.bulk_hammer(0, [99, 101], 10, t.tRAS, REF_T)
        s_manual = manual.bank(0).stress_of(100)
        s_bulk = bulk.bank(0).stress_of(100)
        assert s_manual.below_acts == s_bulk.below_acts == 10
        assert s_manual.above_acts == s_bulk.above_acts == 10
        assert s_manual.below_on_ns == pytest.approx(s_bulk.below_on_ns)
        assert end == pytest.approx(now)

    def test_write_resets_victim_stress(self):
        module = make_module()
        t = module.timing
        module.bulk_hammer(0, [99, 101], 50, t.tRAS, REF_T)
        write_full(module, 0, 100, 0x55, REF_T + 1_000_000)
        assert module.bank(0).stress_of(100).total_acts == 0

    def test_edge_rows_have_one_neighbor(self):
        module = make_module()
        t = module.timing
        module.bulk_hammer(0, [0], 10, t.tRAS, REF_T)
        assert module.bank(0).stress_of(1).total_acts == 10

    def test_bulk_hammer_below_tras_rejected(self):
        module = make_module()
        with pytest.raises(TimingViolationError):
            module.bulk_hammer(0, [5], 10, 1.0, REF_T)


class TestDisturbance:
    def test_hammering_past_threshold_flips_victim(self):
        module = make_module()
        module.disable_interference_sources()
        t = module.timing
        now = write_full(module, 0, 100, 0x55, REF_T)
        now = write_full(module, 0, 99, 0xAA, now)
        now = write_full(module, 0, 101, 0xAA, now)
        process = module.fault_model.process(0, 100)
        from repro.dram.faults import Condition
        threshold = process.current_threshold(Condition("checkered0", t.tRAS, 50.0))
        now = module.bulk_hammer(0, [99, 101], int(threshold * 1.5), t.tRAS, now)
        module.activate(0, 100, now + t.tRP)
        data = module.read_row(0, 100, now + t.tRP + t.tRCD)
        assert np.any(data != 0x55)
        assert module.bank(0).injected_flips(100)

    def test_insufficient_hammering_no_flips(self):
        module = make_module()
        module.disable_interference_sources()
        t = module.timing
        now = write_full(module, 0, 100, 0x55, REF_T)
        now = write_full(module, 0, 99, 0xAA, now)
        now = write_full(module, 0, 101, 0xAA, now)
        now = module.bulk_hammer(0, [99, 101], 10, t.tRAS, now)
        module.activate(0, 100, now + t.tRP)
        data = module.read_row(0, 100, now + t.tRP + t.tRCD)
        assert np.all(data == 0x55)

    def test_reading_twice_does_not_unflip(self):
        module = make_module()
        module.disable_interference_sources()
        t = module.timing
        now = write_full(module, 0, 100, 0x55, REF_T)
        now = write_full(module, 0, 99, 0xAA, now)
        now = write_full(module, 0, 101, 0xAA, now)
        process = module.fault_model.process(0, 100)
        from repro.dram.faults import Condition
        threshold = process.current_threshold(Condition("checkered0", t.tRAS, 50.0))
        now = module.bulk_hammer(0, [99, 101], int(threshold * 1.2), t.tRAS, now)
        module.activate(0, 100, now + t.tRP)
        first = module.read_row(0, 100, now + t.tRP + t.tRCD)
        second = module.read_row(0, 100, now + t.tRP + t.tRCD + 50)
        assert np.array_equal(first, second)
