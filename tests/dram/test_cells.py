"""Tests for true-/anti-cell layouts."""

import numpy as np
import pytest

from repro.dram.cells import (
    CellLayout,
    CellLayoutKind,
    bits_to_bytes,
    bytes_to_bits,
)
from repro.errors import ConfigurationError


def test_all_true_rows():
    layout = CellLayout(CellLayoutKind.ALL_TRUE)
    assert layout.row_is_true_cell(0)
    assert layout.row_is_true_cell(12345)
    assert layout.flip_direction(3) == "1->0"


def test_row_blocks_alternate():
    layout = CellLayout(CellLayoutKind.ROW_BLOCKS, block_rows=512)
    assert layout.row_is_true_cell(0)
    assert not layout.row_is_true_cell(512)
    assert layout.row_is_true_cell(1024)
    assert layout.flip_direction(512) == "0->1"


def test_alternate_rows():
    layout = CellLayout(CellLayoutKind.ALTERNATE_ROWS)
    assert layout.row_is_true_cell(0)
    assert not layout.row_is_true_cell(1)


def test_mixed_has_no_row_polarity():
    layout = CellLayout(CellLayoutKind.MIXED)
    assert not layout.row_uniform
    with pytest.raises(ConfigurationError):
        layout.row_is_true_cell(0)
    # but per-bit polarity is defined and alternates byte-wise
    assert layout.bit_is_true_cell(0, 0) != layout.bit_is_true_cell(0, 8)
    assert layout.bit_is_true_cell(0, 0) != layout.bit_is_true_cell(1, 0)


def test_charged_mask_true_cells():
    layout = CellLayout(CellLayoutKind.ALL_TRUE)
    bits = np.array([1, 0, 1, 1], dtype=np.uint8)
    assert np.array_equal(layout.charged_mask(0, bits), bits.astype(bool))


def test_charged_mask_anti_cells():
    layout = CellLayout(CellLayoutKind.ALTERNATE_ROWS)
    bits = np.array([1, 0], dtype=np.uint8)
    # row 1 is anti-cell: charged when storing 0
    assert np.array_equal(layout.charged_mask(1, bits), np.array([False, True]))


def test_charged_mask_mixed():
    layout = CellLayout(CellLayoutKind.MIXED)
    bits = np.ones(16, dtype=np.uint8)
    mask = layout.charged_mask(0, bits)
    # First byte true cells (charged for 1s), second byte anti (uncharged).
    assert mask[:8].all() and not mask[8:].any()


def test_bit_packing_roundtrip():
    data = np.arange(16, dtype=np.uint8)
    assert np.array_equal(bits_to_bytes(bytes_to_bits(data)), data)
    bits = bytes_to_bits(np.array([0b00000001], dtype=np.uint8))
    assert bits[0] == 1 and bits[1:].sum() == 0  # LSB-first
