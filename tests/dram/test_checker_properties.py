"""Property tests for the table-driven TimingChecker.

Two invariants, over randomized inputs:

* **Soundness** — command streams that are legal *by construction* (the
  Bender interpreter schedules every command at the earliest JEDEC-legal
  time) never produce a violation, on any protocol.
* **Completeness** — a stream with one injected too-early command always
  produces a violation naming the violated rule at the exact command
  index, for every same-bank min-gap rule of every protocol preset.
  Hypothesis shrinks any failure to the minimal (rule, gap) example.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bender.interpreter import Interpreter
from repro.bender.isa import ReadRow, WriteRow
from repro.bender.program import ProgramBuilder
from repro.chips import build_module
from repro.dram.checker import EPS, TimingChecker
from repro.dram.commands import Command, CommandKind
from repro.dram.geometry import DramGeometry
from repro.dram.timing import (
    PRESETS,
    RULE_MIN_GAP,
    SCOPE_SAME_BANK,
    rule_table,
)

#: One catalog device per protocol (compact build, real rule table).
_MODULE_IDS = ("M1", "D0", "Chip0")

_MODULES: dict = {}


def _module(module_id: str):
    # Reused across examples: program legality depends only on the
    # interpreter's scheduling, never on accumulated bank state (every
    # generated program closes all banks before it ends). Rebuild if a
    # prior example aborted mid-program and left a bank open.
    cached = _MODULES.get(module_id)
    if cached is None or any(
        bank.open_row is not None for bank in cached.banks
    ):
        cached = build_module(module_id, seed=7)
        cached.disable_interference_sources()
        _MODULES[module_id] = cached
    return cached


@st.composite
def _legal_programs(draw):
    """A random well-formed Bender program: the interpreter schedules it
    tightly, so the synthesized command stream is legal by construction."""
    module_id = draw(st.sampled_from(_MODULE_IDS))
    module = _module(module_id)
    n_banks = module.geometry.n_banks
    n_rows = module.geometry.n_rows
    builder = ProgramBuilder("property")
    open_rows: dict = {}
    tag = 0
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        bank = draw(st.integers(min_value=0, max_value=n_banks - 1))
        if bank in open_rows:
            op = draw(st.sampled_from(["pre", "read", "write", "wait"]))
            if op == "pre":
                builder.pre(bank)
                del open_rows[bank]
            elif op == "read":
                tag += 1
                builder._program.instructions.append(
                    ReadRow(bank, open_rows[bank], f"t{tag}")
                )
            elif op == "write":
                builder._program.instructions.append(
                    WriteRow(bank, open_rows[bank], 0xA5)
                )
            else:
                builder.wait(draw(st.floats(
                    min_value=1.0, max_value=200.0,
                    allow_nan=False, allow_infinity=False,
                )))
        else:
            op = draw(st.sampled_from(["act", "hammer", "wait"]))
            if op == "act":
                row = draw(st.integers(min_value=0, max_value=n_rows - 1))
                builder.act(bank, row)
                open_rows[bank] = row
            elif op == "hammer":
                rows = draw(st.lists(
                    st.integers(min_value=0, max_value=n_rows - 1),
                    min_size=1, max_size=2, unique=True,
                ))
                t_ras = float(module.timing.tRAS)
                builder.hammer(
                    bank, rows,
                    draw(st.integers(min_value=1, max_value=30)),
                    draw(st.floats(
                        min_value=t_ras, max_value=t_ras + 40.0,
                        allow_nan=False, allow_infinity=False,
                    )),
                )
            else:
                builder.wait(draw(st.floats(
                    min_value=1.0, max_value=200.0,
                    allow_nan=False, allow_infinity=False,
                )))
    for bank in sorted(open_rows):
        builder.pre(bank)
    return module, builder.build()


@settings(max_examples=40, deadline=None)
@given(workload=_legal_programs())
def test_legal_schedules_never_flag(workload):
    module, program = workload
    interpreter = Interpreter(module, check_timing=True)
    interpreter.run(program)  # a violation would raise here
    assert interpreter._checker.report.ok
    assert interpreter._checker.report.n_commands == len(
        list(interpreter.log.iter_commands())
    )


# ----------------------------------------------------------------------
# Injected violations
# ----------------------------------------------------------------------

def _constructible(rule) -> bool:
    """Same-bank min-gap rules whose command pair we can synthesize."""
    return (
        rule.kind == RULE_MIN_GAP
        and rule.scope == SCOPE_SAME_BANK
        and rule.delay > 0.0
    )


_INJECTABLE = [
    (preset_name, rule)
    for preset_name, params in sorted(PRESETS.items())
    for rule in rule_table(params)
    if _constructible(rule)
]


def _command(kind_name: str, at: float) -> Command:
    # TimingRule.prev/curr hold the command-kind *value* strings.
    kind = CommandKind(kind_name)
    if kind is CommandKind.ACT:
        return Command(kind, at, bank=0, row=0)
    return Command(kind, at, bank=0)


@settings(max_examples=60, deadline=None)
@given(
    case=st.sampled_from(_INJECTABLE),
    fraction=st.floats(
        min_value=0.05, max_value=0.95,
        allow_nan=False, allow_infinity=False,
    ),
)
def test_injected_violation_flags_rule_and_index(case, fraction):
    preset_name, rule = case
    params = PRESETS[preset_name]
    geometry = DramGeometry(
        n_banks=4, n_rows=64, protocol=params.protocol, n_bank_groups=2
    )
    early = rule.delay * fraction

    checker = TimingChecker(timing=params, geometry=geometry)
    checker.feed(_command(rule.prev, 0.0))
    checker.feed(_command(rule.curr, early))
    assert any(
        violation.index == 1 and violation.rule == rule.name
        for violation in checker.report.violations
    ), (
        f"{preset_name}: {rule.name} gap {early:.3f} < {rule.delay:.3f} "
        f"not flagged at command #1"
    )

    # The boundary is legal: the exact delay never flags this rule.
    boundary = TimingChecker(timing=params, geometry=geometry)
    boundary.feed(_command(rule.prev, 0.0))
    boundary.feed(_command(rule.curr, rule.delay))
    assert not any(
        violation.rule == rule.name
        for violation in boundary.report.violations
    )


@settings(max_examples=30, deadline=None)
@given(
    case=st.sampled_from(_INJECTABLE),
    jitter=st.floats(
        min_value=0.0, max_value=1000.0,
        allow_nan=False, allow_infinity=False,
    ),
)
def test_gap_at_or_past_delay_never_flags(case, jitter):
    preset_name, rule = case
    params = PRESETS[preset_name]
    geometry = DramGeometry(
        n_banks=4, n_rows=64, protocol=params.protocol, n_bank_groups=2
    )
    checker = TimingChecker(timing=params, geometry=geometry)
    checker.feed(_command(rule.prev, 0.0))
    checker.feed(_command(rule.curr, rule.delay + jitter))
    assert not any(
        violation.rule == rule.name
        for violation in checker.report.violations
    )
    # Float-tolerance guard: a gap within EPS of the delay stays legal.
    tolerant = TimingChecker(timing=params, geometry=geometry)
    tolerant.feed(_command(rule.prev, 0.0))
    tolerant.feed(_command(rule.curr, rule.delay - EPS / 2))
    assert not any(
        violation.rule == rule.name
        for violation in tolerant.report.violations
    )
