"""Tests for the DRAM command vocabulary."""

import pytest

from repro.dram.commands import Command, CommandKind


def test_act_requires_row():
    with pytest.raises(ValueError):
        Command(CommandKind.ACT, issued_at=0.0, bank=0)


def test_column_commands_require_bank():
    with pytest.raises(ValueError):
        Command(CommandKind.RD, issued_at=0.0)
    Command(CommandKind.RD, issued_at=0.0, bank=1)


def test_describe_contains_fields():
    cmd = Command(CommandKind.ACT, issued_at=120.0, bank=3, row=0x1A2)
    text = cmd.describe()
    assert "ACT" in text and "b3" in text and "0x1a2" in text


def test_rank_level_commands():
    ref = Command(CommandKind.REF, issued_at=5.0)
    assert ref.bank is None
