"""Golden cross-protocol conformance suite for the TimingChecker.

``tests/dram/conformance/`` holds one committed corpus per protocol:
known-legal and known-illegal command streams (in the
:meth:`~repro.dram.commands.CommandLog.to_payload` JSON form) with the
checker's exact expected verdict — the full ordered list of
``(index, rule)`` violations, empty for legal streams. Each protocol
covers at least four timing rules with both a legal-boundary stream
(gaps exactly at the JEDEC minimum never flag) and a violating stream.

These pin the checker's observable behavior: any change to the rule
tables, the scope resolution (bank groups, HBM2 pseudo channels), or
the violation indexing shows up as a corpus diff here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dram.checker import check_log
from repro.dram.commands import CommandLog
from repro.dram.geometry import DramGeometry
from repro.dram.timing import PRESETS, rule_table

CORPUS_DIR = Path(__file__).parent / "conformance"


def _corpora():
    for path in sorted(CORPUS_DIR.glob("*.json")):
        yield path.stem, json.loads(path.read_text())


def _cases():
    for stem, payload in _corpora():
        for case in payload["cases"]:
            yield pytest.param(payload, case, id=f"{stem}-{case['name']}")


@pytest.mark.parametrize("payload,case", list(_cases()))
def test_conformance_verdict(payload, case):
    params = PRESETS[payload["preset"]]
    geometry = DramGeometry(**payload["geometry"])
    log = CommandLog.from_payload(case["stream"])
    report = check_log(log, params, geometry=geometry)
    got = [{"index": v.index, "rule": v.rule} for v in report.violations]
    assert got == case["violations"], (
        f"{payload['preset']} {case['name']}: expected "
        f"{case['violations']}, checker said:\n{report.describe()}"
    )
    assert report.n_commands == log.n_commands


def test_corpus_covers_every_protocol():
    protocols = {payload["geometry"]["protocol"] for _, payload in _corpora()}
    assert protocols == {"DDR4", "DDR5", "HBM2"}


@pytest.mark.parametrize(
    "stem,payload", list(_corpora()), ids=[s for s, _ in _corpora()]
)
def test_corpus_breadth(stem, payload):
    """Each protocol corpus exercises >= 4 rules, each with a legal and
    a violating stream, and every named rule exists in that protocol's
    rule table."""
    table = {rule.name for rule in rule_table(PRESETS[payload["preset"]])}
    legal_rules = set()
    violating_rules = set()
    for case in payload["cases"]:
        assert case["rule"] in table, (
            f"{stem}: case {case['name']} names unknown rule {case['rule']}"
        )
        if case["violations"]:
            violating_rules.update(v["rule"] for v in case["violations"])
        else:
            legal_rules.add(case["rule"])
    both = legal_rules & violating_rules
    assert len(both) >= 4, (
        f"{stem}: only {sorted(both)} have both legal and violating "
        "streams; need >= 4 rules"
    )
