"""Tests for the packed device-model fast path (repro.dram.fastfaults).

The scalar :class:`~repro.dram.faults.RowVrdProcess` is the specification;
every fast-path query must be *bit-identical* to it — same RNG draws in
the same order, same floats out — across conditions, streams, and both
geometric-sampler routes (searchsorted run tables and the direct
``rng.geometric`` fallback).
"""

import numpy as np
import pytest

from repro.dram import faults, fastfaults, traps
from repro.dram.faults import (
    Condition,
    ModuleFaultModel,
    RowVrdProcess,
    VrdModelParams,
)
from repro.dram.fastfaults import (
    BankVrdState,
    _attach_run_tables,
    _trap_column,
    _TrapPlan,
    build_bank_state,
)
from repro.dram.traps import Trap, sample_occupancy_series
from repro.errors import ConfigurationError
from repro.rng import derive

ROW_BITS = 8192
SEED = 11
MODULE = "FF"
BANK = 2
ROWS = list(range(0, 48, 3))

REF = Condition("checkered0", 35.0, 50.0)
CONDITIONS = [
    REF,
    Condition("rowstripe1", 35.0, 50.0),
    Condition("custom", 35.0, 50.0),  # canonicalizes to "other"
    Condition("checkered0", 7.2, 85.0),
    Condition("checkered1", 120.0, 30.0),
    Condition("checkered0", 35.0, 50.0, wordline_voltage=2.2),
]


def make_params(**overrides) -> VrdModelParams:
    return VrdModelParams(mean_rdt=4000.0, **overrides)


def make_state(params=None, rows=ROWS) -> BankVrdState:
    params = params or make_params()
    return build_bank_state(params, ROW_BITS, SEED, MODULE, BANK, rows)


def make_process(row: int, params=None) -> RowVrdProcess:
    params = params or make_params()
    return RowVrdProcess(params, ROW_BITS, SEED, (MODULE, BANK, row))


class TestLatentSeriesBitIdentity:
    @pytest.mark.parametrize("condition", CONDITIONS)
    @pytest.mark.parametrize("stream", ["series", "guess"])
    def test_matches_scalar_process(self, condition, stream):
        state = make_state()
        bulk = state.latent_series_bulk(condition, 200, stream=stream)
        for index, row in enumerate(ROWS):
            reference = make_process(row).latent_series(
                condition, 200, stream=stream
            )
            np.testing.assert_array_equal(bulk[index], reference)

    def test_row_subset_and_single_row(self):
        state = make_state()
        subset = [ROWS[5], ROWS[1], ROWS[5]]
        bulk = state.latent_series_bulk(REF, 64, rows=subset)
        assert bulk.shape == (3, 64)
        np.testing.assert_array_equal(bulk[0], bulk[2])
        for index, row in enumerate(subset):
            np.testing.assert_array_equal(
                bulk[index], state.latent_series(row, REF, 64)
            )
            np.testing.assert_array_equal(
                bulk[index], make_process(row).latent_series(REF, 64)
            )

    def test_guess_means_match_scalar_guess_stream(self):
        state = make_state()
        means = state.guess_means(REF, repeats=10)
        for index, row in enumerate(ROWS):
            series = make_process(row).latent_series(REF, 10, stream="guess")
            assert means[index] == float(series.mean())

    def test_empty_and_single_measurement_series(self):
        state = make_state()
        assert state.latent_series_bulk(REF, 0).shape == (len(ROWS), 0)
        bulk = state.latent_series_bulk(REF, 1)
        for index, row in enumerate(ROWS):
            np.testing.assert_array_equal(
                bulk[index], make_process(row).latent_series(REF, 1)
            )

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            make_state().latent_series_bulk(REF, -1)

    def test_zero_trap_rows(self):
        params = make_params(
            trap_count_mean=0.0, rare_trap_prob=0.0, big_trap_prob=0.0
        )
        state = make_state(params=params)
        bulk = state.latent_series_bulk(REF, 100)
        for index, row in enumerate(ROWS):
            reference = make_process(row, params=params).latent_series(
                REF, 100
            )
            np.testing.assert_array_equal(bulk[index], reference)


class TestSequentialMirror:
    def test_stepping_and_thresholds(self):
        state = make_state()
        for row in ROWS[:4]:
            process = make_process(row)
            for _ in range(30):
                process.begin_measurement(REF)
                state.begin_measurement(row, REF)
                assert state.current_threshold(row, REF) == (
                    process.current_threshold(REF)
                )

    def test_trial_flips_with_accumulating_set(self):
        state = make_state()
        for row in ROWS[:4]:
            process = make_process(row)
            flipped_ref, flipped_fast = set(), set()
            for step in range(5):
                process.begin_measurement(REF)
                state.begin_measurement(row, REF)
                hammers = process.current_threshold(REF) * (
                    1.0 + 0.05 * step
                )
                ref_flips = process.trial_flips(
                    REF, hammers, already_flipped=flipped_ref
                )
                fast_flips = state.trial_flips(
                    row, REF, hammers, already_flipped=flipped_fast
                )
                assert fast_flips == ref_flips
                flipped_ref.update(ref_flips)
                flipped_fast.update(fast_flips)


class TestTrapColumnMirror:
    # Edge cases around the traps module's probability clamps plus one
    # probability on each geometric-sampler branch.
    EDGE_TRAPS = [
        Trap(depth=0.2, p_occupy=1e-9, p_release=1.0),  # at _MIN_P / _MAX_P
        Trap(depth=0.2, p_occupy=1e-12, p_release=1.0),  # clamped up/down
        Trap(depth=0.2, p_occupy=1.0, p_release=1.0),  # both at _MAX_P
        Trap(depth=0.2, p_occupy=0.5, p_release=0.7),  # search branch
        Trap(depth=0.2, p_occupy=0.01, p_release=0.02),  # inversion branch
        Trap(depth=0.2, p_occupy=0.9, p_release=0.05),  # mixed branches
    ]

    @pytest.mark.parametrize("trap", EDGE_TRAPS)
    @pytest.mark.parametrize("n", [0, 1, 5, 500])
    def test_with_run_tables(self, trap, n):
        plan = _TrapPlan(trap.depth, trap.p_occupy, trap.p_release)
        _attach_run_tables([plan])
        fast = _trap_column(plan, n, derive(3, "trapcol", n))
        reference = sample_occupancy_series(trap, n, derive(3, "trapcol", n))
        np.testing.assert_array_equal(fast, reference)

    @pytest.mark.parametrize("trap", EDGE_TRAPS)
    def test_direct_route_without_tables(self, trap):
        plan = _TrapPlan(trap.depth, trap.p_occupy, trap.p_release)
        assert plan.table_occ is None and plan.table_rel is None
        fast = _trap_column(plan, 300, derive(4, "direct"))
        reference = sample_occupancy_series(trap, 300, derive(4, "direct"))
        np.testing.assert_array_equal(fast, reference)


class TestMirrorGate:
    def test_forced_fallback_still_bit_identical(self, monkeypatch):
        monkeypatch.setattr(faults, "_MIRROR_OK", False)
        state = make_state()
        assert all(
            plan.table_occ is None
            for plans in state._row_plans
            for plan in plans
        )
        bulk = state.latent_series_bulk(REF, 150)
        for index, row in enumerate(ROWS):
            np.testing.assert_array_equal(
                bulk[index], make_process(row).latent_series(REF, 150)
            )

    def test_env_var_overrides_probe(self, monkeypatch):
        monkeypatch.setattr(faults, "_MIRROR_OK", None)
        monkeypatch.setenv(faults.GEOMETRIC_MIRROR_ENV_VAR, "0")
        assert faults.geometric_mirror_ok() is False
        monkeypatch.setattr(faults, "_MIRROR_OK", None)
        monkeypatch.setenv(faults.GEOMETRIC_MIRROR_ENV_VAR, "1")
        assert faults.geometric_mirror_ok() is True

    def test_probe_result_cached_per_process(self, monkeypatch):
        monkeypatch.setattr(faults, "_MIRROR_OK", None)
        monkeypatch.delenv(faults.GEOMETRIC_MIRROR_ENV_VAR, raising=False)
        first = faults.geometric_mirror_ok()
        assert faults._MIRROR_OK is first
        assert faults.geometric_mirror_ok() is first
        # The legacy module attribute stays readable through the facade.
        assert faults._BULK_UNIFORM_OK is first


class TestModuleFacade:
    def test_latent_series_bank_matches_processes(self):
        model = ModuleFaultModel(make_params(), ROW_BITS, SEED, MODULE)
        bulk = model.latent_series_bank(BANK, ROWS, REF, 120)
        for index, row in enumerate(ROWS):
            reference = model.process(BANK, row).latent_series(REF, 120)
            np.testing.assert_array_equal(bulk[index], reference)

    def test_bank_state_cached_by_rows_tuple(self):
        model = ModuleFaultModel(make_params(), ROW_BITS, SEED, MODULE)
        first = model.bank_state(BANK, ROWS)
        assert model.bank_state(BANK, ROWS) is first
        other = model.bank_state(BANK, ROWS[:4])
        assert other is not first
        assert model.bank_state(BANK, ROWS[:4]) is other
