"""Tests for the VRD fault model."""

import numpy as np
import pytest

from repro.dram.faults import (
    Condition,
    ModuleFaultModel,
    RowVrdProcess,
    VrdModelParams,
    classify_pattern,
    effective_hammers,
)
from repro.errors import ConfigurationError


def make_process(seed=7, **overrides) -> RowVrdProcess:
    params = VrdModelParams(mean_rdt=2000.0, **overrides)
    return RowVrdProcess(params, row_bits=8192, seed=seed, identity=("T", 0, 5))


REF = Condition("checkered0", 35.0, 50.0)


class TestCondition:
    def test_canonical_quantizes(self):
        cond = Condition("checkered0", 35.0401, 50.3)
        canon = cond.canonical()
        assert canon.t_agg_on == 35.0
        assert canon.temperature == 50.5

    def test_unknown_pattern_becomes_other(self):
        assert Condition("weird", 35.0, 50.0).canonical().pattern == "other"

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            Condition("checkered0", -1.0, 50.0)
        with pytest.raises(ConfigurationError):
            Condition("checkered0", 35.0, 300.0)


class TestClassifyPattern:
    @pytest.mark.parametrize(
        "victim,aggressor,expected",
        [
            (0x00, 0xFF, "rowstripe0"),
            (0xFF, 0x00, "rowstripe1"),
            (0x55, 0xAA, "checkered0"),
            (0xAA, 0x55, "checkered1"),
            (0x12, 0x34, "other"),
            (0x55, 0x55, "other"),
        ],
    )
    def test_table2(self, victim, aggressor, expected):
        assert classify_pattern(victim, aggressor) == expected


class TestRowVrdProcess:
    def test_series_reproducible(self):
        a = make_process().latent_series(REF, 500)
        b = make_process().latent_series(REF, 500)
        assert np.array_equal(a, b)

    def test_series_positive_and_varying(self):
        series = make_process().latent_series(REF, 2000)
        assert np.all(series > 0)
        assert np.unique(series).size > 1

    def test_different_conditions_different_series(self):
        process = make_process()
        a = process.latent_series(REF, 200)
        b = process.latent_series(Condition("rowstripe1", 35.0, 50.0), 200)
        assert not np.array_equal(a, b)

    def test_rowpress_lowers_threshold(self):
        process = make_process()
        short = process.latent_series(REF, 2000).mean()
        long = process.latent_series(Condition("checkered0", 7800.0, 50.0), 2000)
        assert long.mean() < short

    def test_temperature_lowers_base_rdt(self):
        process = make_process(trap_count_mean=0.0, big_trap_prob=0.0,
                               rare_trap_prob=0.0)
        cold = process.factors(Condition("checkered0", 35.0, 50.0))
        hot = process.factors(Condition("checkered0", 35.0, 80.0))
        assert hot.rdt_factor < cold.rdt_factor

    def test_begin_measurement_changes_sample(self):
        process = make_process()
        values = set()
        for _ in range(50):
            process.begin_measurement(REF)
            values.add(process.current_threshold(REF))
        assert len(values) > 1

    def test_trial_flips_respects_threshold(self):
        process = make_process()
        process.begin_measurement(REF)
        threshold = process.current_threshold(REF)
        assert process.trial_flips(REF, threshold * 0.5) == []
        flips = process.trial_flips(REF, threshold)
        assert flips, "hammering at the threshold must flip the weakest cell"
        assert all(0 <= bit < 8192 for bit in flips)

    def test_overdrive_flips_more_cells(self):
        process = make_process()
        process.begin_measurement(REF)
        threshold = process.current_threshold(REF)
        at_threshold = process.trial_flips(REF, threshold)
        far_above = process.trial_flips(REF, threshold * 3)
        assert len(far_above) >= len(at_threshold)
        assert len(far_above) > 1

    def test_already_flipped_excluded(self):
        process = make_process()
        process.begin_measurement(REF)
        threshold = process.current_threshold(REF)
        first = set(process.trial_flips(REF, threshold * 2))
        second = process.trial_flips(REF, threshold * 2, already_flipped=first)
        assert not set(second) & first

    def test_negative_hammers_rejected(self):
        process = make_process()
        with pytest.raises(ConfigurationError):
            process.trial_flips(REF, -1.0)

    def test_first_flip_margin_matches_threshold(self):
        process = make_process()
        factors = process.factors(REF)
        process.begin_measurement(REF)
        threshold = process.current_threshold(REF)
        state = process._state(REF)
        assert threshold == pytest.approx(
            state.latent_rdt * (1.0 + factors.first_flip_margin)
        )


class TestModuleFaultModel:
    def make(self) -> ModuleFaultModel:
        return ModuleFaultModel(
            VrdModelParams(mean_rdt=2000.0), row_bits=8192, seed=3, module_id="T"
        )

    def test_process_cached(self):
        model = self.make()
        assert model.process(0, 1) is model.process(0, 1)
        assert model.process(0, 1) is not model.process(0, 2)

    def test_spatial_variation(self):
        model = self.make()
        bases = {model.process(0, row).base_rdt for row in range(20)}
        assert len(bases) == 20

    def test_trial_flips_zero_drive(self):
        model = self.make()
        assert model.trial_flips(0, 1, REF, 0, 0) == []


class TestEffectiveHammers:
    def test_balanced_double_sided(self):
        assert effective_hammers(1000, 1000) == 1000

    def test_single_sided_much_weaker(self):
        assert effective_hammers(1000, 0) == 250.0

    def test_imbalanced(self):
        assert effective_hammers(800, 1000) == 800 + 0.25 * 200

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            effective_hammers(-1, 5)


class TestTrialFlipSeries:
    """The batched trial kernel vs n scalar begin/trial rounds."""

    def test_matches_scalar_rounds(self):
        for hammers in (500.0, 1500.0, 2500.0):
            batched = make_process()
            scalar = make_process()
            matrix = batched.trial_flip_series(REF, hammers, 300)
            rows = []
            for _ in range(300):
                scalar.begin_measurement(REF)
                flips = scalar.trial_flips(REF, hammers)
                row = np.zeros(matrix.shape[1], dtype=bool)
                bit_of = {
                    int(bit): index
                    for index, bit in enumerate(scalar.weak_cell_bits)
                }
                for bit in flips:
                    row[bit_of[int(bit)]] = True
                rows.append(row)
            np.testing.assert_array_equal(matrix, np.array(rows))
            # Post-run state: the stateful stream continues identically.
            batched.begin_measurement(REF)
            scalar.begin_measurement(REF)
            assert batched.current_threshold(REF) == scalar.current_threshold(
                REF
            )

    def test_empty_series_is_a_no_op(self):
        batched = make_process()
        scalar = make_process()
        matrix = batched.trial_flip_series(REF, 1000.0, 0)
        assert matrix.shape[0] == 0
        batched.begin_measurement(REF)
        scalar.begin_measurement(REF)
        assert batched.current_threshold(REF) == scalar.current_threshold(REF)

    def test_negative_hammers_rejected(self):
        with pytest.raises(ConfigurationError):
            make_process().trial_flip_series(REF, -1.0, 10)
