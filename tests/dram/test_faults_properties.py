"""Property-based tests on the VRD fault model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.faults import Condition, RowVrdProcess, VrdModelParams


def make_process(seed=7):
    return RowVrdProcess(
        VrdModelParams(mean_rdt=2000.0),
        row_bits=8192,
        seed=seed,
        identity=("P", 0, 3),
    )


conditions = st.builds(
    Condition,
    pattern=st.sampled_from(
        ["rowstripe0", "rowstripe1", "checkered0", "checkered1", "other"]
    ),
    t_agg_on=st.floats(min_value=33.0, max_value=70_200.0),
    temperature=st.floats(min_value=20.0, max_value=95.0),
    wordline_voltage=st.floats(min_value=2.0, max_value=2.8),
)


@given(condition=conditions)
@settings(max_examples=80, deadline=None)
def test_factors_positive_and_margin_nonnegative(condition):
    process = make_process()
    factors = process.factors(condition)
    assert factors.rdt_factor > 0
    assert factors.depth_factor > 0
    assert factors.first_flip_margin >= 0


@given(condition=conditions)
@settings(max_examples=40, deadline=None)
def test_canonicalization_idempotent(condition):
    canon = condition.canonical()
    assert canon.canonical() == canon


@given(condition=conditions)
@settings(max_examples=30, deadline=None)
def test_latent_series_positive_and_reproducible(condition):
    process = make_process()
    a = process.latent_series(condition, 50)
    b = make_process().latent_series(condition, 50)
    assert np.all(a > 0)
    assert np.array_equal(a, b)


@given(
    t_short=st.floats(min_value=35.0, max_value=500.0),
    scale=st.floats(min_value=2.0, max_value=100.0),
)
@settings(max_examples=50, deadline=None)
def test_rowpress_monotone_in_on_time(t_short, scale):
    """Longer aggressor-on-time never raises the RDT factor."""
    process = make_process()
    short = process.factors(Condition("checkered0", t_short, 50.0))
    long = process.factors(Condition("checkered0", t_short * scale, 50.0))
    assert long.rdt_factor <= short.rdt_factor + 1e-12


@given(volts=st.floats(min_value=2.0, max_value=2.5))
@settings(max_examples=40, deadline=None)
def test_undervolting_monotone(volts):
    process = make_process()
    nominal = process.factors(Condition("checkered0", 35.0, 50.0, 2.5))
    under = process.factors(Condition("checkered0", 35.0, 50.0, volts))
    assert under.rdt_factor >= nominal.rdt_factor - 1e-12


@given(
    hammers=st.floats(min_value=0.0, max_value=1e6),
    condition=conditions,
)
@settings(max_examples=40, deadline=None)
def test_trial_flips_monotone_in_drive(hammers, condition):
    """More hammers never flip fewer cells (same latent state)."""
    process = make_process()
    process.begin_measurement(condition)
    fewer = set(process.trial_flips(condition, hammers))
    # Re-query at double the drive WITHOUT advancing the fault clock; the
    # jitter draws differ, but the deterministic weakest cell and all
    # no-jitter invariants must hold.
    more = set(process.trial_flips(condition, hammers * 2 + 1))
    threshold = process.current_threshold(condition)
    if hammers >= threshold:
        assert fewer  # at/above threshold, something must flip
        assert more
    assert len(more) >= (1 if hammers * 2 + 1 >= threshold else 0)


def test_weak_cell_margins_sorted_and_growing():
    process = make_process()
    margins = process.weak_cell_margins
    assert margins[0] == 0.0
    assert np.all(np.diff(margins) >= 0)
    # Geometric growth: the last gap dwarfs the first nonzero one.
    gaps = np.diff(margins)
    nonzero = gaps[gaps > 0]
    if nonzero.size >= 2:
        assert nonzero[-1] > nonzero[0]
