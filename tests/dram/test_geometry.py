"""Tests for DRAM geometry."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, ConfigurationError


def test_defaults_are_consistent():
    geom = DramGeometry()
    assert geom.row_bits == geom.row_bits_per_chip * geom.n_chips
    assert geom.row_bytes * 8 == geom.row_bits


def test_columns_per_row_matches_appendix():
    # 64 Kibit module rows (8 Kib per chip), 8 chips, 64-bit bursts ->
    # the paper's 128 column commands per full-row access.
    geom = DramGeometry(row_bits_per_chip=8_192, n_chips=8, burst_bits=64)
    assert geom.row_bits == 65_536
    assert geom.columns_per_row == 128


def test_chip_of_bit_stripes_bytes():
    geom = DramGeometry(n_chips=8, row_bits_per_chip=1024)
    assert geom.chip_of_bit(0) == 0
    assert geom.chip_of_bit(7) == 0
    assert geom.chip_of_bit(8) == 1
    assert geom.chip_of_bit(8 * 8) == 0  # wraps after all chips


def test_chip_of_bit_out_of_range():
    geom = DramGeometry(n_chips=2, row_bits_per_chip=64)
    with pytest.raises(ConfigurationError):
        geom.chip_of_bit(geom.row_bits)


def test_validate_address():
    geom = DramGeometry(n_banks=4, n_rows=16)
    geom.validate_address(3, 15)
    with pytest.raises(AddressError):
        geom.validate_address(4, 0)
    with pytest.raises(AddressError):
        geom.validate_address(0, 16)


@pytest.mark.parametrize("field", ["n_banks", "n_rows", "n_chips"])
def test_rejects_non_positive(field):
    with pytest.raises(ConfigurationError):
        DramGeometry(**{field: 0})


def test_rejects_non_byte_rows():
    with pytest.raises(ConfigurationError):
        DramGeometry(row_bits_per_chip=1001)
