"""Tests for logical-to-physical row mappings."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.mapping import (
    MirroredFoldMapping,
    ScrambledBlockMapping,
    SequentialMapping,
    reverse_engineer_adjacency,
    verify_mapping_against_adjacency,
)
from repro.errors import AddressError, ConfigurationError

MAPPINGS = [SequentialMapping, MirroredFoldMapping, ScrambledBlockMapping]


@pytest.mark.parametrize("mapping_cls", MAPPINGS)
def test_bijection_exhaustive_small(mapping_cls):
    mapping = mapping_cls(256)
    physical = {mapping.to_physical(row) for row in range(256)}
    assert physical == set(range(256))
    for row in range(256):
        assert mapping.to_logical(mapping.to_physical(row)) == row


@pytest.mark.parametrize("mapping_cls", MAPPINGS)
@given(row=st.integers(min_value=0, max_value=4095))
def test_roundtrip_property(mapping_cls, row):
    mapping = mapping_cls(4096)
    assert mapping.to_logical(mapping.to_physical(row)) == row
    assert mapping.to_physical(mapping.to_logical(row)) == row


def test_power_of_two_required():
    with pytest.raises(ConfigurationError):
        SequentialMapping(1000)


def test_neighbors_sequential():
    mapping = SequentialMapping(64)
    assert mapping.physical_neighbors(10) == [9, 11]
    assert mapping.physical_neighbors(0) == [1]
    assert mapping.physical_neighbors(63) == [62]


def test_neighbors_mirrored_differ_from_logical():
    mapping = MirroredFoldMapping(64)
    # Any row with bit 3 set maps through the fold.
    neighbors = mapping.aggressors_for_victim(8)
    assert len(neighbors) == 2
    # neighbors are logical addresses whose physicals are +-1 of victim's.
    physical = mapping.to_physical(8)
    assert sorted(mapping.to_physical(n) for n in neighbors) == [
        physical - 1, physical + 1,
    ]


def test_out_of_range_rejected():
    mapping = SequentialMapping(64)
    with pytest.raises(AddressError):
        mapping.to_physical(64)
    with pytest.raises(AddressError):
        mapping.physical_neighbors(-1)


def test_reverse_engineering_recovers_neighbors():
    mapping = ScrambledBlockMapping(256)

    def probe(row):
        return mapping.aggressors_for_victim(row)

    adjacency = reverse_engineer_adjacency(256, probe, range(16, 48))
    assert verify_mapping_against_adjacency(mapping, adjacency)
    # The identity mapping should NOT explain a scrambled chip's data for
    # at least one probed row.
    assert not verify_mapping_against_adjacency(SequentialMapping(256), adjacency)
