"""Tests for module-level features: refresh, TRR, on-die ECC."""

import numpy as np
import pytest

from repro.dram.faults import Condition
from repro.errors import ConfigurationError
from tests.dram.test_bank import write_full
from tests.conftest import make_module


def hammer_past_threshold(module, factor=1.5):
    """Initialize rows 99-101 and hammer past the current threshold."""
    t = module.timing
    now = write_full(module, 0, 100, 0x55, 1000.0)
    now = write_full(module, 0, 99, 0xAA, now)
    now = write_full(module, 0, 101, 0xAA, now)
    process = module.fault_model.process(0, 100)
    threshold = process.current_threshold(Condition("checkered0", t.tRAS, 50.0))
    now = module.bulk_hammer(0, [99, 101], int(threshold * factor), t.tRAS, now)
    return now


def read_victim(module, now):
    t = module.timing
    module.activate(0, 100, now + t.tRP)
    return module.read_row(0, 100, now + t.tRP + t.tRCD)


def test_disable_interference_sources():
    module = make_module()
    module.disable_interference_sources()
    assert not module.refresh_enabled
    assert not module.mode.ecc_enabled


def test_trr_masks_bitflips_when_refresh_enabled():
    """With refresh on, the TRR sampler refreshes the hammered rows'
    victims at each REF, preventing the flip a disabled-refresh run sees.
    """
    protected = make_module(seed=99)
    unprotected = make_module(seed=99)
    unprotected.disable_interference_sources()

    now_p = hammer_past_threshold(protected)
    now_u = hammer_past_threshold(unprotected)
    # The unprotected module flips.
    assert np.any(read_victim(unprotected, now_u) != 0x55)
    # A REF lands between hammering and the read on the protected module.
    protected.refresh(now_p + 10)
    data = read_victim(protected, now_p + 10 + protected.timing.tRFC)
    assert np.all(data == 0x55)


def test_refresh_pointer_covers_bank():
    module = make_module()
    assert module.rows_per_refresh >= 1
    start = module._refresh_pointer
    module.refresh(50.0)
    assert module._refresh_pointer == (
        (start + module.rows_per_refresh) % module.geometry.n_rows
    )


def test_on_die_ecc_corrects_single_flip():
    module = make_module(seed=5)
    module.refresh_enabled = False
    module.mode.ecc_enabled = True
    now = hammer_past_threshold(module, factor=1.05)
    data = read_victim(module, now)
    flips = module.bank(0).injected_flips(100)
    # Words with exactly one flip read back corrected.
    per_word = {}
    for bit in flips:
        per_word.setdefault(bit // 64, []).append(bit)
    expected_visible = sum(len(v) for v in per_word.values() if len(v) > 1)
    observed = int(np.unpackbits(data ^ np.uint8(0x55), bitorder="little").sum())
    assert observed == expected_visible


def test_flips_by_chip_grouping():
    module = make_module(seed=42)
    module.disable_interference_sources()
    now = hammer_past_threshold(module, factor=2.0)
    read_victim(module, now)
    grouped = module.flips_by_chip(0, 100)
    flips = module.bank(0).injected_flips(100)
    assert sum(len(bits) for bits in grouped.values()) == len(flips)
    for chip, bits in grouped.items():
        for bit in bits:
            assert module.geometry.chip_of_bit(bit) == chip


def test_temperature_bounds():
    module = make_module()
    module.set_temperature(85.0)
    assert module.temperature == 85.0
    with pytest.raises(ConfigurationError):
        module.set_temperature(200.0)


def test_unknown_kind_rejected():
    with pytest.raises(ConfigurationError):
        make_module()  # fine
        from repro.dram.module import DramModule
        DramModule("X", kind="DDR9")


def test_trr_observe_repeat_matches_scalar_loop():
    """The closed-form bulk TRR update equals k successive observes."""
    from repro.dram.module import _TrrSampler

    rng = np.random.default_rng(3)
    for _ in range(50):
        fast = _TrrSampler(table_size=4)
        scalar = _TrrSampler(table_size=4)
        for _ in range(rng.integers(1, 12)):
            row = int(rng.integers(0, 8))
            repeats = int(rng.integers(0, 70))
            fast.observe_repeat(row, repeats)
            for _ in range(repeats):
                scalar.observe(row)
            assert fast.counts == scalar.counts
