"""Tests for the retention model."""

import pytest

from repro.dram.retention import RetentionModel
from repro.errors import ConfigurationError
from repro.units import ms


def make_model(**overrides):
    return RetentionModel(
        row_bits=8192, t_refw_ns=ms(64.0), seed=1, module_id="T", **overrides
    )


def test_no_flips_within_refresh_window():
    model = make_model()
    for row in range(50):
        assert model.retention_flips(0, row, ms(64.0)) == []


def test_flips_far_beyond_horizon():
    model = make_model()
    horizon = model.horizon_ns(0, 3)
    flips = model.retention_flips(0, 3, horizon * 10)
    assert len(flips) == model.weak_cells
    assert all(0 <= bit < 8192 for bit in flips)


def test_gradual_decay():
    model = make_model()
    horizon = model.horizon_ns(0, 3)
    early = model.retention_flips(0, 3, horizon * 1.1)
    late = model.retention_flips(0, 3, horizon * 3.0)
    assert len(early) <= len(late)


def test_horizon_above_window():
    model = make_model()
    for row in range(100):
        assert model.horizon_ns(0, row) > ms(64.0)


def test_deterministic_per_row():
    a = make_model()
    b = make_model()
    assert a.horizon_ns(1, 9) == b.horizon_ns(1, 9)


def test_validation():
    with pytest.raises(ConfigurationError):
        make_model(median_horizon_windows=0.5)
    with pytest.raises(ConfigurationError):
        make_model(weak_cells=0)
    model = make_model()
    with pytest.raises(ConfigurationError):
        model.retention_flips(0, 0, -1.0)
