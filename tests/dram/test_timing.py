"""Tests for JEDEC timing presets."""

import pytest

from repro.dram import timing as t
from repro.errors import ConfigurationError


def test_table6_values_exact():
    # The DDR5 preset must carry the paper's Table 6 numbers verbatim.
    p = t.DDR5_8800
    assert p.tRRD_S == 1.816
    assert p.tCCD_S == 1.816
    assert p.tCCD_L == 5.0
    assert p.tCCD_L_WR == 20.0
    assert p.tRCD == 14.09
    assert p.tRP == 14.09
    assert p.tRAS == 32.0
    assert p.tRTP == 7.5
    assert p.tWR == 30.0


def test_ddr4_reference_on_time():
    # "minimum tAggOn (e.g., 35 ns)" for the DDR4 modules.
    assert t.DDR4_3200.tRAS == 35.0


def test_trc_is_tras_plus_trp():
    for preset in t.PRESETS.values():
        assert preset.tRC == pytest.approx(preset.tRAS + preset.tRP)


def test_max_row_open_is_nine_trefi():
    assert t.DDR4_3200.max_row_open == pytest.approx(9 * t.DDR4_3200.tREFI)


def test_activations_per_refresh_window():
    preset = t.DDR4_3200
    count = preset.activations_per_refresh_window(preset.tRAS)
    assert count == int(preset.tREFW // (preset.tRAS + preset.tRP))
    with pytest.raises(ConfigurationError):
        preset.activations_per_refresh_window(1.0)


def test_with_overrides():
    modified = t.DDR4_3200.with_overrides(tRAS=40.0)
    assert modified.tRAS == 40.0
    assert modified.tRCD == t.DDR4_3200.tRCD


def test_invalid_timing_rejected():
    with pytest.raises(ConfigurationError):
        t.DDR4_3200.with_overrides(tRP=-1.0)
    with pytest.raises(ConfigurationError):
        t.DDR4_3200.with_overrides(tRAS=1.0)  # below tRCD


def test_presets_lookup():
    assert set(t.PRESETS) >= {
        "DDR4-2400", "DDR4-2666", "DDR4-2933", "DDR4-3200",
        "DDR5-8800", "HBM2-2000",
    }
