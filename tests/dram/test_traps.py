"""Tests for the charge-trap random-telegraph-noise model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.traps import (
    Trap,
    multiplier_series,
    occupancy_matrix,
    sample_occupancy_series,
)
from repro.errors import ConfigurationError


def test_trap_validation():
    with pytest.raises(ConfigurationError):
        Trap(depth=0.0, p_occupy=0.5, p_release=0.5)
    with pytest.raises(ConfigurationError):
        Trap(depth=0.5, p_occupy=0.0, p_release=0.5)
    with pytest.raises(ConfigurationError):
        Trap(depth=1.5, p_occupy=0.5, p_release=0.5)


def test_stationary_occupancy():
    trap = Trap(depth=0.1, p_occupy=0.2, p_release=0.8)
    assert trap.stationary_occupancy == pytest.approx(0.2)


def test_switch_rate():
    trap = Trap(depth=0.1, p_occupy=0.5, p_release=0.5)
    # Symmetric fast trap: switches half the time.
    assert trap.switch_rate == pytest.approx(0.5)


def test_series_matches_stationary_distribution():
    trap = Trap(depth=0.1, p_occupy=0.3, p_release=0.6)
    rng = np.random.default_rng(0)
    series = sample_occupancy_series(trap, 200_000, rng)
    assert series.mean() == pytest.approx(trap.stationary_occupancy, abs=0.02)


def test_series_run_lengths_geometric():
    trap = Trap(depth=0.1, p_occupy=0.5, p_release=0.25)
    rng = np.random.default_rng(1)
    series = sample_occupancy_series(trap, 100_000, rng)
    occupied = series.astype(int)
    # Mean sojourn length in occupied state approx 1/p_release.
    changes = np.nonzero(np.diff(occupied))[0]
    runs = np.diff(np.concatenate(([0], changes + 1, [len(occupied)])))
    states = occupied[np.concatenate(([0], changes + 1))]
    occupied_runs = runs[states == 1]
    assert occupied_runs.mean() == pytest.approx(1 / 0.25, rel=0.1)


def test_series_matches_sequential_stepping_distribution():
    """The vectorized run-length sampler and the per-step walker must be
    the same stochastic process (compare switch rates and occupancy)."""
    trap = Trap(depth=0.1, p_occupy=0.4, p_release=0.3)
    rng = np.random.default_rng(2)
    fast = sample_occupancy_series(trap, 50_000, rng)

    state = trap.sample_initial(rng)
    slow = np.empty(50_000, dtype=bool)
    for index in range(50_000):
        state = trap.step(state, rng)
        slow[index] = state

    assert fast.mean() == pytest.approx(slow.mean(), abs=0.03)
    fast_switch = np.mean(fast[1:] != fast[:-1])
    slow_switch = np.mean(slow[1:] != slow[:-1])
    assert fast_switch == pytest.approx(slow_switch, abs=0.03)


@given(
    p_occupy=st.floats(min_value=0.01, max_value=1.0),
    p_release=st.floats(min_value=0.01, max_value=1.0),
    n=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=50, deadline=None)
def test_series_length_property(p_occupy, p_release, n):
    trap = Trap(depth=0.2, p_occupy=p_occupy, p_release=p_release)
    series = sample_occupancy_series(trap, n, np.random.default_rng(3))
    assert series.shape == (n,)
    assert series.dtype == bool


def test_occupancy_matrix_shape():
    traps = [Trap(0.1, 0.5, 0.5), Trap(0.2, 0.3, 0.7)]
    matrix = occupancy_matrix(traps, 100, np.random.default_rng(0))
    assert matrix.shape == (100, 2)
    assert occupancy_matrix([], 100, np.random.default_rng(0)).shape == (100, 0)


def test_multiplier_series_bounds():
    traps = [Trap(0.3, 0.5, 0.5), Trap(0.2, 0.5, 0.5)]
    mult = multiplier_series(traps, 1.0, 10_000, np.random.default_rng(0))
    assert np.all(mult <= 1.0)
    assert np.all(mult >= (1 - 0.3) * (1 - 0.2) - 1e-12)
    # With no traps, the multiplier is identically one.
    assert np.all(multiplier_series([], 1.0, 10, np.random.default_rng(0)) == 1.0)


def test_multiplier_depth_factor_scaling():
    traps = [Trap(0.3, 0.9, 0.1)]  # almost always occupied
    weak = multiplier_series(traps, 0.1, 5_000, np.random.default_rng(0))
    strong = multiplier_series(traps, 1.0, 5_000, np.random.default_rng(0))
    assert weak.mean() > strong.mean()


def test_negative_depth_factor_rejected():
    with pytest.raises(ConfigurationError):
        multiplier_series([Trap(0.1, 0.5, 0.5)], -1.0, 10, np.random.default_rng(0))
