"""Tests for the wordline-voltage condition axis (Sec. 6.5 extension)."""

import pytest

from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0
from repro.core.rdt import FastRdtMeter
from repro.dram.faults import Condition
from repro.errors import ConfigurationError


def test_condition_voltage_canonicalization():
    condition = Condition("checkered0", 35.0, 50.0, wordline_voltage=2.3456)
    assert condition.canonical().wordline_voltage == 2.35


def test_condition_voltage_bounds():
    with pytest.raises(ConfigurationError):
        Condition("checkered0", 35.0, 50.0, wordline_voltage=0.5)
    with pytest.raises(ConfigurationError):
        Condition("checkered0", 35.0, 50.0, wordline_voltage=5.0)


def test_nominal_voltage_is_default(module):
    config = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
    assert config.condition(module.timing).wordline_voltage == 2.5
    assert "V" not in config.label()


def test_undervolting_raises_rdt(module):
    """Reduced wordline voltage weakens read disturbance: the measured RDT
    rises (prior work on RowHammer under reduced wordline voltage)."""
    meter = FastRdtMeter(module)
    nominal = TestConfig(CHECKERED0, t_agg_on_ns=35.0)
    undervolted = TestConfig(
        CHECKERED0, t_agg_on_ns=35.0, wordline_voltage_v=2.1
    )
    mean_nominal = meter.measure_series(100, nominal, 300).mean
    mean_under = meter.measure_series(100, undervolted, 300).mean
    assert mean_under > mean_nominal * 1.1


def test_voltage_label(module):
    config = TestConfig(
        CHECKERED0, t_agg_on_ns=35.0, wordline_voltage_v=2.2
    )
    assert config.label().endswith("/2.2V")


def test_voltage_changes_vrd_profile(module):
    """Voltage is a full condition axis: it alters the series, not just
    its mean (another parameter a comprehensive profile must cover)."""
    meter = FastRdtMeter(module)
    nominal = meter.measure_series(
        100, TestConfig(CHECKERED0, t_agg_on_ns=35.0), 400
    )
    under = meter.measure_series(
        100,
        TestConfig(CHECKERED0, t_agg_on_ns=35.0, wordline_voltage_v=2.2),
        400,
    )
    assert nominal.cv != under.cv
