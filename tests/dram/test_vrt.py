"""Tests for the variable-retention-time (VRT) analogy model."""

import numpy as np
import pytest

from repro.dram.retention import RetentionModel
from repro.errors import ConfigurationError
from repro.units import ms


def make_model():
    return RetentionModel(
        row_bits=8192, t_refw_ns=ms(64.0), seed=1, module_id="T"
    )


def test_vrt_cell_two_states():
    cell = make_model().vrt_cell(0, 5)
    assert cell.low_retention_ns < cell.high_retention_ns
    series = cell.retention_series(20_000)
    assert series.min() < cell.high_retention_ns * 0.6
    assert series.max() > cell.low_retention_ns * 1.5


def test_vrt_series_reproducible():
    a = make_model().vrt_cell(0, 5).retention_series(500)
    b = make_model().vrt_cell(0, 5).retention_series(500)
    assert np.array_equal(a, b)


def test_vrt_low_state_is_rare():
    cell = make_model().vrt_cell(0, 5)
    series = cell.retention_series(50_000)
    threshold = (cell.low_retention_ns + cell.high_retention_ns) / 2
    low_fraction = float((series < threshold).mean())
    assert low_fraction == pytest.approx(
        cell.trap.stationary_occupancy, abs=0.05
    )


def test_vrt_cell_bit_is_a_weak_cell():
    model = make_model()
    cell = model.vrt_cell(0, 5, cell_index=1)
    _, cells = model._row(0, 5)
    assert cell.bit in cells.tolist()


def test_vrt_validation():
    model = make_model()
    with pytest.raises(ConfigurationError):
        model.vrt_cell(0, 5, cell_index=99)
    with pytest.raises(ConfigurationError):
        model.vrt_cell(0, 5).retention_series(-1)


def test_vrt_vrd_analogy_run_structure():
    """Both phenomena are random-telegraph processes: VRT cells and VRD
    rows show the same run-length structure (mostly short runs with a
    geometric tail)."""
    from repro.core import stats

    cell = make_model().vrt_cell(0, 5)
    series = cell.retention_series(20_000)
    lengths = stats.run_lengths(np.where(series < series.mean(), 0.0, 1.0))
    assert lengths.max() > 10  # dwell in the common state
    assert (lengths == 1).sum() > 0  # brief excursions exist
