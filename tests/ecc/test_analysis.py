"""Tests for Table 3's error-outcome probabilities."""

import numpy as np
import pytest

from repro.ecc.analysis import (
    PAPER_WORST_BER,
    default_codec,
    monte_carlo_outcomes,
    outcome_probabilities,
    table3,
)
from repro.ecc.chipkill import ChipkillSsc
from repro.ecc.hamming import Sec72, Secded72
from repro.errors import EccError


def test_paper_worst_ber():
    # 5 unique flips in a 64 Kibit row.
    assert PAPER_WORST_BER == pytest.approx(7.6e-5, rel=0.01)


def test_table3_reproduces_paper_values():
    rows = table3()
    assert rows["SEC"].uncorrectable == pytest.approx(1.48e-5, rel=0.01)
    assert rows["SEC"].undetectable == pytest.approx(1.48e-5, rel=0.01)
    assert rows["SEC"].detectable_uncorrectable is None
    assert rows["SECDED"].uncorrectable == pytest.approx(1.48e-5, rel=0.01)
    assert rows["SECDED"].undetectable == pytest.approx(2.64e-8, rel=0.02)
    assert rows["SECDED"].detectable_uncorrectable == pytest.approx(
        1.48e-5, rel=0.01
    )
    assert rows["SSC"].uncorrectable == pytest.approx(5.66e-5, rel=0.01)
    assert rows["SSC"].undetectable == pytest.approx(5.66e-5, rel=0.01)
    assert rows["SSC"].detectable_uncorrectable is None


def test_as_row_formats_na():
    row = outcome_probabilities("SEC", 1e-4).as_row()
    assert row["detectable_uncorrectable"] == "N/A"
    assert "e-" in row["uncorrectable"]


def test_unknown_scheme_rejected():
    with pytest.raises(EccError):
        outcome_probabilities("tmr", 1e-4)
    with pytest.raises(EccError):
        default_codec("tmr")
    with pytest.raises(EccError):
        outcome_probabilities("SEC", 1.5)


def test_default_codecs():
    assert isinstance(default_codec("sec"), Sec72)
    assert isinstance(default_codec("SECDED"), Secded72)
    assert isinstance(default_codec("chipkill"), ChipkillSsc)


@pytest.mark.parametrize("scheme", ["SEC", "SECDED", "SSC"])
def test_monte_carlo_consistent_with_closed_form(scheme):
    """Inject errors at an exaggerated BER (for statistics) and compare the
    real codec's uncorrectable rate with the analytic binomial value."""
    ber = 3e-3
    expected = outcome_probabilities(scheme, ber)
    outcome = monte_carlo_outcomes(
        default_codec(scheme), ber, trials=30_000, rng=np.random.default_rng(0)
    )
    assert outcome.uncorrectable == pytest.approx(
        expected.uncorrectable, rel=0.35, abs=5e-4
    )


def test_monte_carlo_secded_silent_rate_far_below_uncorrectable():
    outcome = monte_carlo_outcomes(
        Secded72(), 3e-3, trials=30_000, rng=np.random.default_rng(1)
    )
    assert outcome.undetectable < outcome.uncorrectable / 5
