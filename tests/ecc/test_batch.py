"""Batched codec paths must match the scalar codecs trial for trial."""

import numpy as np
import pytest

from repro.ecc import analysis
from repro.ecc.analysis import monte_carlo_outcomes
from repro.ecc.base import OUTCOME_BY_CODE, OUTCOME_DETECTED
from repro.ecc.chipkill import ChipkillSsc
from repro.ecc.gf import FIELD
from repro.ecc.hamming import Sec72, Secded72
from repro.errors import EccError

CODES = [Sec72(), Secded72(), ChipkillSsc()]


class _ScalarOnly:
    """Hides ``encode_batch``/``decode_batch`` to force the fallback path."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        if name in ("encode_batch", "decode_batch"):
            raise AttributeError(name)
        return getattr(self._inner, name)


class TestGfArrays:
    def test_mul_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, 500)
        b = rng.integers(0, 256, 500)
        products = FIELD.mul_arrays(a, b)
        for x, y, product in zip(a, b, products):
            assert product == FIELD.mul(int(x), int(y))

    def test_div_matches_scalar(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, 500)
        b = rng.integers(1, 256, 500)
        quotients = FIELD.div_arrays(a, b)
        for x, y, quotient in zip(a, b, quotients):
            assert quotient == FIELD.div(int(x), int(y))

    def test_log_matches_scalar(self):
        values = np.arange(1, 256)
        logs = FIELD.log_alpha_arrays(values)
        for value, log in zip(values, logs):
            assert log == FIELD.log_alpha(int(value))

    def test_zero_divisor_and_zero_log_rejected(self):
        with pytest.raises(EccError):
            FIELD.div_arrays(np.array([1, 2]), np.array([3, 0]))
        with pytest.raises(EccError):
            FIELD.log_alpha_arrays(np.array([5, 0]))


@pytest.mark.parametrize("code", CODES, ids=lambda c: type(c).__name__)
class TestBatchCodecEquality:
    def test_encode_batch_matches_scalar(self, code):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, (300, code.k_bits), dtype=np.uint8)
        batch = code.encode_batch(data)
        scalar = np.stack([code.encode(row) for row in data])
        np.testing.assert_array_equal(batch, scalar)

    def test_decode_batch_matches_scalar_per_trial(self, code):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 2, (600, code.k_bits), dtype=np.uint8)
        codewords = code.encode_batch(data)
        # Error weights spanning clean, single, double, and bursty cases.
        errors = (rng.random(codewords.shape) < 0.02).astype(np.uint8)
        errors[:100] = 0
        for trial in range(100, 200):  # guaranteed single-bit errors
            errors[trial] = 0
            errors[trial, trial % code.n_bits] = 1
        errors[200:250, :6] = 1  # burst confined to the first bits
        received = codewords ^ errors
        decoded, outcomes = code.decode_batch(received)
        for trial in range(len(received)):
            result = code.decode(received[trial])
            np.testing.assert_array_equal(decoded[trial], result.data)
            assert OUTCOME_BY_CODE[outcomes[trial]] is result.outcome

    def test_batch_shape_validation(self, code):
        with pytest.raises(EccError):
            code.encode_batch(np.zeros((4, code.k_bits + 1), dtype=np.uint8))
        with pytest.raises(EccError):
            code.decode_batch(np.zeros(code.n_bits, dtype=np.uint8))


@pytest.mark.parametrize("code", CODES, ids=lambda c: type(c).__name__)
def test_monte_carlo_dispatch_identical(code):
    """Batched and scalar-fallback dispatch consume the same draws and must
    produce identical per-trial tallies for a fixed seed."""
    trials = analysis._MC_CHUNK + 500  # cross one chunk boundary
    batched = monte_carlo_outcomes(
        code, 1e-3, trials=trials, rng=np.random.default_rng(5)
    )
    fallback = monte_carlo_outcomes(
        _ScalarOnly(code), 1e-3, trials=trials, rng=np.random.default_rng(5)
    )
    assert batched.uncorrectable == fallback.uncorrectable
    assert batched.undetectable == fallback.undetectable
    assert batched.detected == fallback.detected
    assert batched.trials == fallback.trials == trials


def test_outcome_codes_cover_enum():
    assert len(OUTCOME_BY_CODE) == 3
    assert OUTCOME_BY_CODE[OUTCOME_DETECTED].value == "detected"
