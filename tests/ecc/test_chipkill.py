"""Tests for the Chipkill-like single-symbol-correcting code."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.base import DecodeOutcome
from repro.ecc.chipkill import ChipkillSsc


@pytest.fixture(scope="module")
def code():
    return ChipkillSsc()


def test_dimensions(code):
    # 18 symbols of 8 bits = 144-bit codeword, 16 data symbols (Table 3).
    assert code.n_bits == 144
    assert code.k_bits == 128
    assert code.n_symbols == 18


def test_clean_roundtrip(code):
    rng = np.random.default_rng(0)
    for _ in range(20):
        data = rng.integers(0, 2, 128, dtype=np.uint8)
        assert code.roundtrip_clean(data)


def test_any_error_within_one_symbol_corrected(code):
    rng = np.random.default_rng(1)
    data = rng.integers(0, 2, 128, dtype=np.uint8)
    codeword = code.encode(data)
    for symbol in range(code.n_symbols):
        for pattern in (0x01, 0x81, 0xFF, 0x5A):
            corrupted = codeword.copy()
            for bit in range(8):
                if pattern & (1 << bit):
                    corrupted[symbol * 8 + bit] ^= 1
            result = code.decode(corrupted)
            assert result.outcome is DecodeOutcome.CORRECTED
            assert np.array_equal(result.data, data), (symbol, pattern)


def test_two_symbol_errors_not_silently_wrong_often(code):
    """Two-symbol errors exceed the correction power; the decoder either
    detects them or (rarely) miscorrects — it must never return CLEAN."""
    rng = np.random.default_rng(2)
    data = rng.integers(0, 2, 128, dtype=np.uint8)
    codeword = code.encode(data)
    outcomes = {"detected": 0, "miscorrected": 0}
    for _ in range(1000):
        s1, s2 = rng.choice(code.n_symbols, size=2, replace=False)
        corrupted = codeword.copy()
        corrupted[s1 * 8 + int(rng.integers(8))] ^= 1
        corrupted[s2 * 8 + int(rng.integers(8))] ^= 1
        result = code.decode(corrupted)
        assert result.outcome is not DecodeOutcome.CLEAN
        if result.outcome is DecodeOutcome.DETECTED:
            outcomes["detected"] += 1
        elif not np.array_equal(result.data, data):
            outcomes["miscorrected"] += 1
    assert outcomes["detected"] > 0


def test_symbol_of_bit(code):
    assert code.symbol_of_bit(0) == 0
    assert code.symbol_of_bit(7) == 0
    assert code.symbol_of_bit(8) == 1
    assert code.symbol_of_bit(143) == 17


@given(
    data=st.lists(st.integers(0, 1), min_size=128, max_size=128),
    symbol=st.integers(0, 17),
    pattern=st.integers(1, 255),
)
@settings(max_examples=60, deadline=None)
def test_single_symbol_correction_property(data, symbol, pattern):
    code = ChipkillSsc()
    bits = np.array(data, dtype=np.uint8)
    codeword = code.encode(bits)
    corrupted = codeword.copy()
    for bit in range(8):
        if pattern & (1 << bit):
            corrupted[symbol * 8 + bit] ^= 1
    result = code.decode(corrupted)
    assert result.outcome is DecodeOutcome.CORRECTED
    assert np.array_equal(result.data, bits)
