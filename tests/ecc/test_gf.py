"""Field-axiom tests for GF(256)."""

import pytest
from hypothesis import given, strategies as st

from repro.ecc.gf import FIELD
from repro.errors import EccError

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


@given(a=elements, b=elements)
def test_addition_is_xor_and_self_inverse(a, b):
    assert FIELD.add(a, b) == a ^ b
    assert FIELD.add(a, a) == 0


@given(a=elements, b=elements, c=elements)
def test_multiplication_associative_commutative(a, b, c):
    assert FIELD.mul(a, b) == FIELD.mul(b, a)
    assert FIELD.mul(FIELD.mul(a, b), c) == FIELD.mul(a, FIELD.mul(b, c))


@given(a=elements, b=elements, c=elements)
def test_distributive(a, b, c):
    left = FIELD.mul(a, FIELD.add(b, c))
    right = FIELD.add(FIELD.mul(a, b), FIELD.mul(a, c))
    assert left == right


@given(a=nonzero)
def test_inverse(a):
    assert FIELD.mul(a, FIELD.inv(a)) == 1


@given(a=elements, b=nonzero)
def test_division(a, b):
    assert FIELD.mul(FIELD.div(a, b), b) == a


def test_zero_division_rejected():
    with pytest.raises(EccError):
        FIELD.inv(0)
    with pytest.raises(EccError):
        FIELD.div(1, 0)
    with pytest.raises(EccError):
        FIELD.log_alpha(0)


def test_alpha_powers():
    assert FIELD.pow_alpha(0) == 1
    assert FIELD.pow_alpha(1) == 2
    assert FIELD.pow_alpha(255) == 1  # alpha has order 255
    for power in range(0, 255, 17):
        assert FIELD.log_alpha(FIELD.pow_alpha(power)) == power
