"""Tests for the SEC and Hsiao SECDED (72, 64) codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.base import DecodeOutcome
from repro.ecc.hamming import Sec72, Secded72
from repro.errors import EccError

CODES = [Sec72(), Secded72()]


def random_data(rng):
    return rng.integers(0, 2, 64, dtype=np.uint8)


@pytest.mark.parametrize("code", CODES, ids=lambda c: type(c).__name__)
def test_clean_roundtrip(code):
    rng = np.random.default_rng(0)
    for _ in range(20):
        assert code.roundtrip_clean(random_data(rng))


@pytest.mark.parametrize("code", CODES, ids=lambda c: type(c).__name__)
def test_every_single_bit_error_corrected(code):
    rng = np.random.default_rng(1)
    data = random_data(rng)
    codeword = code.encode(data)
    for position in range(code.n_bits):
        corrupted = codeword.copy()
        corrupted[position] ^= 1
        result = code.decode(corrupted)
        assert result.outcome is DecodeOutcome.CORRECTED
        assert np.array_equal(result.data, data), position


def test_secded_detects_all_double_errors():
    code = Secded72()
    rng = np.random.default_rng(2)
    data = random_data(rng)
    codeword = code.encode(data)
    for _ in range(2000):
        i, j = rng.choice(72, size=2, replace=False)
        corrupted = codeword.copy()
        corrupted[i] ^= 1
        corrupted[j] ^= 1
        assert code.decode(corrupted).outcome is DecodeOutcome.DETECTED


def test_sec_double_errors_can_miscorrect():
    """The plain SEC code silently corrupts on some double errors — the
    weakness quantified by Table 3's SEC row."""
    code = Sec72()
    rng = np.random.default_rng(3)
    data = random_data(rng)
    codeword = code.encode(data)
    silent = 0
    for _ in range(2000):
        i, j = rng.choice(72, size=2, replace=False)
        corrupted = codeword.copy()
        corrupted[i] ^= 1
        corrupted[j] ^= 1
        result = code.decode(corrupted)
        if result.outcome is not DecodeOutcome.DETECTED and not np.array_equal(
            result.data, data
        ):
            silent += 1
    assert silent > 0


def test_secded_triple_errors_mostly_alias():
    """Triple errors regain odd syndrome weight; many miscorrect, which is
    the SECDED 'undetectable' channel in Table 3."""
    code = Secded72()
    rng = np.random.default_rng(4)
    data = random_data(rng)
    codeword = code.encode(data)
    wrong_but_confident = 0
    for _ in range(2000):
        positions = rng.choice(72, size=3, replace=False)
        corrupted = codeword.copy()
        for p in positions:
            corrupted[p] ^= 1
        result = code.decode(corrupted)
        if result.outcome is DecodeOutcome.CORRECTED and not np.array_equal(
            result.data, data
        ):
            wrong_but_confident += 1
    assert wrong_but_confident > 0


@pytest.mark.parametrize("code", CODES, ids=lambda c: type(c).__name__)
def test_shape_validation(code):
    with pytest.raises(EccError):
        code.encode(np.zeros(10, dtype=np.uint8))
    with pytest.raises(EccError):
        code.decode(np.zeros(10, dtype=np.uint8))


@given(data=st.lists(st.integers(0, 1), min_size=64, max_size=64))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(data):
    code = Secded72()
    bits = np.array(data, dtype=np.uint8)
    result = code.decode(code.encode(bits))
    assert result.outcome is DecodeOutcome.CLEAN
    assert np.array_equal(result.data, bits)
