"""Merge laws for the fleet's online aggregators.

Every aggregator promises *exact* mergeability: folding a value stream
through any partition, in any order, over any number of merges, yields
bit-identical finalized output. Moments keep exact rational sums
(every float is a dyadic rational), so even floating-point mean/variance
survive re-sharding unchanged; the rest hold integer or lattice state
that is exactly associative by nature.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fleet.agg import (
    Log2Histogram,
    MinMax,
    Moments,
    QuantileSketch,
    Tally,
)

AGGREGATORS = [Moments, MinMax, Tally, Log2Histogram, QuantileSketch]

finite_values = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_values, max_size=60)


def _fold(cls, values):
    aggregator = cls()
    for value in values:
        aggregator.update(1 if cls is Tally else value)
    return aggregator


def _fingerprint(aggregator):
    return (aggregator.finalize(), aggregator.to_payload())


@pytest.mark.parametrize("cls", AGGREGATORS)
@given(chunks=st.lists(value_lists, min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_merge_equals_single_stream(cls, chunks):
    # Associativity/homomorphism: fold each chunk separately and merge,
    # versus fold the concatenation — bit-identical.
    merged = cls()
    for chunk in chunks:
        merged.merge(_fold(cls, chunk))
    flat = _fold(cls, [value for chunk in chunks for value in chunk])
    assert _fingerprint(merged) == _fingerprint(flat)


@pytest.mark.parametrize("cls", AGGREGATORS)
@given(values=value_lists)
@settings(max_examples=60, deadline=None)
def test_identity_element(cls, values):
    # Merging an empty aggregator on either side changes nothing.
    left = _fold(cls, values)
    left.merge(cls())
    right = cls()
    right.merge(_fold(cls, values))
    assert _fingerprint(left) == _fingerprint(right)
    assert _fingerprint(left) == _fingerprint(_fold(cls, values))


@pytest.mark.parametrize("cls", AGGREGATORS)
@given(
    a=value_lists, b=value_lists,
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_shard_order_invariance(cls, a, b, data):
    # Commutativity: A+B == B+A, and any permutation of many shards
    # finalizes identically.
    ab = cls()
    ab.merge(_fold(cls, a))
    ab.merge(_fold(cls, b))
    ba = cls()
    ba.merge(_fold(cls, b))
    ba.merge(_fold(cls, a))
    assert _fingerprint(ab) == _fingerprint(ba)


@pytest.mark.parametrize("cls", AGGREGATORS)
@pytest.mark.parametrize("seed", [1, 17, 7919])
def test_random_partitions_bit_identical(cls, seed):
    # Randomized seeds: one stream, many random shardings, one answer.
    pick = random.Random(seed)
    values = [pick.lognormvariate(5.0, 2.0) for _ in range(200)]
    reference = _fingerprint(_fold(cls, values))
    for _ in range(5):
        cuts = sorted(pick.sample(range(1, len(values)), 4))
        shards = [
            values[start:stop]
            for start, stop in zip([0] + cuts, cuts + [len(values)])
        ]
        pick.shuffle(shards)
        merged = cls()
        for shard in shards:
            merged.merge(_fold(cls, shard))
        assert _fingerprint(merged) == reference


@pytest.mark.parametrize("cls", AGGREGATORS)
@given(values=value_lists)
@settings(max_examples=40, deadline=None)
def test_payload_round_trip(cls, values):
    aggregator = _fold(cls, values)
    restored = cls.from_payload(aggregator.to_payload())
    assert _fingerprint(restored) == _fingerprint(aggregator)


def test_moments_are_exact_rationals():
    # 0.1 + 0.2 + 0.3 in floats depends on order; the rational-sum
    # Moments does not.
    forward = _fold(Moments, [0.1, 0.2, 0.3])
    backward = _fold(Moments, [0.3, 0.2, 0.1])
    assert forward.to_payload() == backward.to_payload()
    assert forward.mean == backward.mean
    # And the finalized mean is the correctly rounded true value.
    assert forward.mean == float(
        (__import__("fractions").Fraction(0.1)
         + __import__("fractions").Fraction(0.2)
         + __import__("fractions").Fraction(0.3)) / 3
    )


def test_minmax_and_tally_semantics():
    minmax = _fold(MinMax, [3.0, -1.0, 7.5])
    assert minmax.finalize() == {"min": -1.0, "max": 7.5}
    tally = Tally()
    tally.update(5)
    tally.update()
    assert tally.count == 6


def test_quantile_sketch_bounds_and_tail():
    sketch = _fold(QuantileSketch, [float(v) for v in range(1, 1001)])
    # Log-bucket quantiles are upper bounds within one bucket's relative
    # error (2**(1/RESOLUTION) ≈ 2.2%).
    for q in (0.5, 0.99, 0.999):
        estimate = sketch.quantile(q)
        true = q * 1000.0
        assert true <= estimate <= true * 2 ** (1 / 16)
    assert sketch.tail_fraction(float("inf")) == 0.0
    assert sketch.tail_fraction(0.0) == pytest.approx(1.0)
    empty = QuantileSketch()
    assert math.isnan(empty.tail_fraction(0.5))
    with pytest.raises(ConfigurationError):
        sketch.update(-1.0)
    with pytest.raises(ConfigurationError):
        sketch.update(float("nan"))
