"""The lazy fleet population: deterministic, seedable, never materialized."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    REGIONS,
    WORKLOADS,
    FleetSpec,
    assignment,
    iter_assignments,
)
from repro.fleet.population import CATALOG_IDS


def test_assignments_are_deterministic_and_independent():
    spec = FleetSpec(n_modules=64, seed=99)
    # Same spec, same index → identical assignment; generation is
    # random-access (index 50 needs no indices 0..49).
    direct = assignment(spec, 50)
    streamed = list(iter_assignments(spec))[50]
    assert direct == streamed
    again = assignment(spec, 50)
    assert direct == again


def test_population_covers_catalog_regions_workloads():
    spec = FleetSpec(n_modules=200, seed=7)
    members = list(iter_assignments(spec))
    assert len(members) == 200
    assert {member.device for member in members} == set(CATALOG_IDS)
    assert {member.region for member in members} == {
        name for name, _, _ in REGIONS
    }
    assert {member.workload for member in members} == {
        name for name, _ in WORKLOADS
    }
    for member in members:
        assert -40.0 <= member.temperature_c <= 125.0
        assert member.activations_per_window > 0
        assert len(member.rows) == spec.rows_per_module
        assert len(set(member.rows)) == spec.rows_per_module
        assert list(member.rows) == sorted(member.rows)


def test_seed_changes_population():
    a = assignment(FleetSpec(n_modules=8, seed=1), 3)
    b = assignment(FleetSpec(n_modules=8, seed=2), 3)
    assert a != b


def test_iter_range_slices():
    spec = FleetSpec(n_modules=20)
    full = list(iter_assignments(spec))
    assert list(iter_assignments(spec, 5, 11)) == full[5:11]


def test_spec_payload_round_trip_and_digest():
    spec = FleetSpec(n_modules=100, seed=5, rows_per_module=4,
                     n_measurements=16, guardband_margin=0.25, shard_size=32)
    assert FleetSpec.from_payload(spec.to_payload()) == spec
    assert spec.digest() == FleetSpec.from_payload(spec.to_payload()).digest()
    # The digest keys checkpoints: any recipe change must move it.
    assert spec.digest() != FleetSpec(
        n_modules=100, seed=5, rows_per_module=4, n_measurements=16,
        guardband_margin=0.25, shard_size=64,
    ).digest()


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=0)
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=4, n_measurements=1)
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=4, guardband_margin=1.0)
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=4, shard_size=0)


def test_default_protocols_keep_catalog_and_digest():
    spec = FleetSpec(n_modules=100, seed=5)
    assert spec.protocols == ("DDR4", "HBM2")
    assert spec.device_pool == CATALOG_IDS
    # The default pool stays out of the payload, so every pre-existing
    # checkpoint digest is preserved — explicit-default specs included.
    assert "protocols" not in spec.to_payload()
    explicit = FleetSpec(n_modules=100, seed=5, protocols=("DDR4", "HBM2"))
    assert explicit.digest() == spec.digest()


def test_protocol_restriction_shapes_pool_and_digest():
    from repro.chips import spec as device_spec

    ddr5 = FleetSpec(n_modules=64, seed=3, protocols=("DDR5",))
    assert ddr5.device_pool
    assert all(
        device_spec(mid).protocol == "DDR5" for mid in ddr5.device_pool
    )
    members = list(iter_assignments(ddr5))
    assert {member.device for member in members} <= set(ddr5.device_pool)
    # Non-default pools are part of the recipe: payload and digest move,
    # and the payload round-trips.
    assert ddr5.to_payload()["protocols"] == ["DDR5"]
    assert FleetSpec.from_payload(ddr5.to_payload()) == ddr5
    assert ddr5.digest() != FleetSpec(n_modules=64, seed=3).digest()


def test_protocol_validation():
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=4, protocols=())
    with pytest.raises(ConfigurationError):
        FleetSpec(n_modules=4, protocols=("LPDDR4",))
