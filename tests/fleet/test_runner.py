"""The streaming fleet runner: sharding, checkpoints, exact resume.

The contract under test is the tentpole's: streamed, sharded,
constant-memory aggregation must be *bit-identical* to the
materialize-everything oracle, for any worker count, and across a
kill/resume boundary.
"""

import json

import pytest

from repro import obs
from repro.fleet import (
    FleetInterrupted,
    FleetSpec,
    assignment,
    run_fleet,
    run_fleet_naive,
    shard_key,
    shard_plan,
    simulate_module,
    simulate_module_oracle,
)
from repro.store import KIND_FLEET, ResultStore

#: Small but non-trivial: 3 shards, two of them full.
SPEC = FleetSpec(
    n_modules=10, seed=41, rows_per_module=2, n_measurements=8, shard_size=4
)


def _fingerprint(result) -> str:
    return json.dumps(
        {"summary": result.summary,
         "margins": {f"{m:g}": v for m, v in sorted(result.margins.items())}},
        sort_keys=True,
    )


def test_shard_plan_is_pure_and_covers_population():
    plan = shard_plan(SPEC)
    assert plan == [(0, 4), (4, 8), (8, 10)]
    assert plan == shard_plan(SPEC)  # worker count never reshapes layout


def test_simulate_module_matches_scalar_oracle():
    member = assignment(SPEC, 3)
    fast = simulate_module(member, SPEC)
    oracle, series = simulate_module_oracle(member, SPEC)
    assert fast == oracle
    assert series.shape == (SPEC.rows_per_module, SPEC.n_measurements)


def test_streamed_matches_materialized_oracle():
    streamed = run_fleet(SPEC, n_jobs=1, checkpoint=False)
    naive = run_fleet_naive(SPEC)
    assert _fingerprint(streamed) == _fingerprint(naive)
    assert streamed.summary["modules"] == SPEC.n_modules


def test_worker_count_never_changes_output_bits():
    single = run_fleet(SPEC, n_jobs=1, checkpoint=False)
    pooled = run_fleet(SPEC, n_jobs=3, checkpoint=False)
    assert _fingerprint(single) == _fingerprint(pooled)


def test_kill_and_resume_is_bit_exact(tmp_path):
    interrupted_store = tmp_path / "interrupted.sqlite"
    clean_store = tmp_path / "clean.sqlite"

    with pytest.raises(FleetInterrupted):
        run_fleet(SPEC, n_jobs=1, store=interrupted_store,
                  fail_after_shards=1)
    # The kill left exactly the checkpointed shards behind.
    store = ResultStore(interrupted_store)
    assert store.stats()["per_kind"] == {KIND_FLEET: 1}

    with obs.tracing() as recorder:
        resumed = run_fleet(SPEC, n_jobs=1, store=interrupted_store)
    counters = recorder.snapshot()["counters"]
    assert counters["fleet.shards.resumed"] == 1
    assert counters["fleet.shards.computed"] == 2
    # Resuming hit the store for the surviving shard (cache hit path).
    assert counters["store.hit"] >= 1
    assert resumed.resumed_shards == 1
    assert resumed.computed_shards == 2

    uninterrupted = run_fleet(SPEC, n_jobs=1, store=clean_store)
    assert _fingerprint(resumed) == _fingerprint(uninterrupted)


def test_completed_run_resumes_entirely_from_checkpoints(tmp_path):
    store = tmp_path / "fleet.sqlite"
    first = run_fleet(SPEC, n_jobs=1, store=store)
    second = run_fleet(SPEC, n_jobs=1, store=store)
    assert first.computed_shards == 3 and first.resumed_shards == 0
    assert second.computed_shards == 0 and second.resumed_shards == 3
    assert _fingerprint(first) == _fingerprint(second)


def test_checkpoints_key_on_spec_digest(tmp_path):
    store = tmp_path / "fleet.sqlite"
    run_fleet(SPEC, n_jobs=1, store=store)
    # A different recipe shares nothing with the cached shards.
    other = FleetSpec(
        n_modules=10, seed=41, rows_per_module=2, n_measurements=9,
        shard_size=4,
    )
    assert shard_key(SPEC, 0, 4) != shard_key(other, 0, 4)
    result = run_fleet(other, n_jobs=1, store=store)
    assert result.resumed_shards == 0
    assert result.computed_shards == 3


def test_prune_covers_fleet_kind(tmp_path):
    path = tmp_path / "fleet.sqlite"
    run_fleet(SPEC, n_jobs=1, store=path)
    store = ResultStore(path)
    assert store.stats()["per_kind"][KIND_FLEET] == 3
    # Fresh entries survive an age filter, fall to the kind filter.
    assert store.prune(kind=KIND_FLEET, older_than_s=3600.0) == 0
    assert store.prune(kind=KIND_FLEET) == 3
    assert store.stats()["per_kind"] == {}


def test_progress_stream_and_result_payload(tmp_path):
    events = []
    result = run_fleet(
        SPEC, n_jobs=1, store=tmp_path / "fleet.sqlite",
        progress=events.append,
    )
    assert [tuple(event["shard"]) for event in events] == shard_plan(SPEC)
    assert {event["source"] for event in events} == {"computed"}
    payload = result.to_payload()
    assert payload["spec"] == SPEC.to_payload()
    assert set(payload["margins"]) == {"0.1", "0.2", "0.3", "0.4", "0.5"}
    # Failure probability cannot increase with a larger guardband.
    rates = [payload["margins"][key]
             for key in ("0.1", "0.2", "0.3", "0.4", "0.5")]
    assert rates == sorted(rates, reverse=True)
