"""Integration: the full Algorithm 1 pipeline on the simulated testbed."""

import numpy as np
import pytest

from repro.bender.host import DramBender
from repro.bender.temperature import PidTemperatureController
from repro.core.config import TestConfig
from repro.core.patterns import ALL_PATTERNS, CHECKERED0
from repro.core.rdt import FastRdtMeter, HammerSweep, RdtMeter, find_victim
from repro.core import stats
from repro.dram.mapping import MirroredFoldMapping
from repro.dram.module import DramModule
from tests.conftest import SMALL_GEOMETRY, make_module


def test_algorithm1_full_pipeline():
    """find_victim -> guess -> 30 measurements through the Bender path,
    with temperature control and interference sources disabled."""
    module = make_module(seed=2024)
    bender = DramBender(module, controller=PidTemperatureController())
    bender.prepare_for_characterization()
    bender.set_temperature(50.0)
    meter = RdtMeter(bender)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)

    guess, victim = find_victim(meter, rows=range(20), config=config)
    assert guess < 40_000
    sweep = HammerSweep.from_guess(guess)
    series = meter.measure_series(victim, config, 30, sweep=sweep)
    assert len(series.valid) == 30
    # Finding 1: the RDT changes across repeated measurements.
    assert series.n_unique > 1
    # Measured values sit on the sweep grid.
    grid = set(sweep.grid())
    assert set(series.valid) <= grid


def test_fast_and_bender_meters_statistically_agree():
    module = make_module(seed=7)
    module.disable_interference_sources()
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    victim = 123

    fast = FastRdtMeter(module).measure_series(victim, config, 600)
    meter = RdtMeter(DramBender(module))
    sweep = HammerSweep.from_guess(FastRdtMeter(module).guess_rdt(victim, config))
    slow = meter.measure_series(victim, config, 60, sweep=sweep)

    assert slow.mean == pytest.approx(fast.mean, rel=0.03)
    assert slow.cv == pytest.approx(fast.cv, abs=max(0.01, fast.cv))


def test_measurement_fits_within_refresh_window():
    """Sec. 3.1: every trial must complete inside tREFW so retention
    failures cannot interfere. Verify for a realistic sweep trial."""
    module = make_module()
    module.disable_interference_sources()
    bender = DramBender(module)
    start = bender.elapsed_ns
    bender.run_trial(0, 100, CHECKERED0, 3000, module.timing.tRAS)
    elapsed = bender.elapsed_ns - start
    assert elapsed < module.timing.tREFW


def test_scrambled_mapping_transparent_to_methodology():
    """Measuring through reverse-engineered adjacency on a folded-mapping
    chip gives the same statistics as the mapping-aware route."""
    module = DramModule(
        "FOLD", geometry=SMALL_GEOMETRY, mapping_factory=MirroredFoldMapping,
        seed=5,
    )
    module.disable_interference_sources()
    bender = DramBender(module)
    victim = 40  # in a folded region
    bender.discover_adjacency(0, [victim])
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    meter = RdtMeter(bender)
    series = meter.measure_series(victim, config, 20)
    assert len(series.valid) == 20


def test_pattern_sweep_changes_profile():
    """Finding 12 at small scale: at least two patterns differ in mean
    measured RDT for the same row."""
    module = make_module(seed=31)
    module.disable_interference_sources()
    meter = FastRdtMeter(module)
    means = {}
    for pattern in ALL_PATTERNS:
        config = TestConfig(pattern, t_agg_on_ns=module.timing.tRAS)
        means[pattern.name] = meter.measure_series(77, config, 300).mean
    values = list(means.values())
    assert max(values) > min(values)


def test_run_length_statistics_on_measured_series():
    """Finding 3's shape: most RDT states persist for only one
    measurement."""
    module = make_module(seed=11)
    module.disable_interference_sources()
    meter = FastRdtMeter(module)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    series = meter.measure_series(200, config, 2000)
    fraction = stats.fraction_single_measurement_changes(series.valid)
    assert fraction > 0.3


def test_acf_indistinguishable_from_noise_on_measured_series():
    """Finding 4: no temporal structure in the measured series."""
    module = make_module(seed=13)
    module.disable_interference_sources()
    meter = FastRdtMeter(module)
    config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
    series = meter.measure_series(300, config, 5000)
    assert stats.acf_indistinguishable_from_noise(
        series.valid, max_lag=50, tolerated_excess=0.2
    )
