"""Integration: the Sec. 3.1 interference sources actually interfere.

The methodology disables refresh/TRR/ECC and stays within the retention
window *because these factors corrupt RDT measurements*. These tests
demonstrate each hazard end to end on the simulated testbed — the reason
the guards exist.
"""

import numpy as np

from repro.dram.module import DramModule
from tests.conftest import SMALL_GEOMETRY, make_module
from tests.dram.test_bank import write_full


def test_overstaying_retention_window_corrupts_reads():
    """A victim left unrefreshed far beyond its retention horizon reads
    back with retention flips — indistinguishable from disturbance flips
    unless the experiment stays within tREFW."""
    module = make_module(seed=5)
    module.disable_interference_sources()
    write_full(module, 0, 50, 0x55, 1000.0)
    horizon = module.retention.horizon_ns(0, 50)
    late = 1000.0 + horizon * 5.0
    module.activate(0, 50, late)
    data = module.read_row(0, 50, late + module.timing.tRCD)
    assert np.any(data != 0x55)


def test_reading_within_window_is_clean():
    module = make_module(seed=5)
    module.disable_interference_sources()
    end = write_full(module, 0, 50, 0x55, 1000.0)
    module.activate(0, 50, end)
    data = module.read_row(0, 50, end + module.timing.tRCD)
    assert np.all(data == 0x55)


def test_refresh_extends_retention():
    """Periodic refresh resets the retention clock: with refresh enabled
    and REF commands covering the row, the late read stays clean."""
    module = make_module(seed=5)
    module.refresh_enabled = True
    write_full(module, 0, 50, 0x55, 1000.0)
    horizon = module.retention.horizon_ns(0, 50)
    # Issue enough refreshes to sweep the whole bank several times.
    refreshes = (module.geometry.n_rows // module.rows_per_refresh + 1) * 2
    step = horizon / refreshes
    now = 1000.0
    for _ in range(refreshes):
        now += step
        module.refresh(now)
    module.activate(0, 50, now + 10)
    data = module.read_row(0, 50, now + 10 + module.timing.tRCD)
    assert np.all(data == 0x55)


def test_on_die_ecc_hides_single_retention_flip():
    """HBM2 on-die ECC masks isolated flips — why the methodology clears
    the ECC mode-register bit before characterizing."""
    module = make_module(seed=9)
    module.refresh_enabled = False
    write_full(module, 0, 60, 0x55, 1000.0)
    horizon = module.retention.horizon_ns(0, 60)
    late = 1000.0 + horizon * 1.2  # exactly one weak cell decayed
    module.activate(0, 60, late)
    module.mode.ecc_enabled = True
    corrected = module.read_row(0, 60, late + module.timing.tRCD)
    module.mode.ecc_enabled = False
    raw = module.read_row(0, 60, late + module.timing.tRCD + 10)
    flips_corrected = int(
        np.unpackbits(corrected ^ np.uint8(0x55), bitorder="little").sum()
    )
    flips_raw = int(
        np.unpackbits(raw ^ np.uint8(0x55), bitorder="little").sum()
    )
    assert flips_raw >= 1
    assert flips_corrected < flips_raw


def test_temperature_sensor_tracks_setting():
    module = make_module()
    module.set_temperature(65.0)
    reading = module.read_temperature_sensor(at=5_000.0)
    assert abs(reading - 65.0) <= 2.0
    assert reading == module.read_temperature_sensor(at=5_000.0)
    # Stability check the paper performs for HBM2 chips 1-3: readings over
    # a long idle period deviate by at most ~2 C.
    readings = [
        module.read_temperature_sensor(at=t)
        for t in np.linspace(0, 1e9, 25)
    ]
    assert max(readings) - min(readings) <= 4.0
