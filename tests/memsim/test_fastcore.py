"""Fast-core equivalence: run_fast is bit-identical to MemorySystem.run.

The contract under test (see :mod:`repro.memsim.fastcore`): same requests
per core, same latency sums (same floats), same hit/miss split, same
preventive-refresh and rank-block counts — for every mitigation and for
custom address sources.
"""

import pytest

from repro.errors import SimulationError
from repro.memsim import CoreStream, MemorySystem, SystemConfig, standard_mixes
from repro.memsim.fastcore import run_fast
from repro.memsim.tracefile import TracePlayer, TraceRecord
from repro.mitigations import (
    AdaptiveMitigation,
    BlockHammer,
    Graphene,
    apply_guardband,
    build_mitigation,
)
from repro.profiling.policy import StaticThresholdPolicy

MIXES = standard_mixes(2)
CONFIG = SystemConfig(window_ns=20_000.0)


def fingerprint(result):
    return (
        result.requests_per_core,
        result.total_latency_per_core,
        result.row_hits,
        result.row_misses,
        result.preventive_refreshes,
        result.rank_blocks,
    )


def assert_equivalent(mix, config, build):
    reference = MemorySystem(mix, config, build()).run()
    fast = MemorySystem(mix, config, build()).run_fast()
    assert fingerprint(fast) == fingerprint(reference)
    return reference


@pytest.mark.parametrize("mix", MIXES, ids=lambda m: m.name)
@pytest.mark.parametrize("name", ["Graphene", "PRAC", "PARA", "MINT"])
@pytest.mark.parametrize("rdt", [1024, 128])
def test_fig14_grid_equivalence(mix, name, rdt):
    reference = assert_equivalent(
        mix, CONFIG, lambda: build_mitigation(name, rdt)
    )
    if rdt == 128 and name in ("PARA", "MINT"):
        # The frequent-action mechanisms must actually exercise preventive
        # logic at this window (trackers only cross at longer horizons;
        # test_window_reset_equivalence covers their action paths).
        assert reference.preventive_refreshes + reference.rank_blocks > 0


@pytest.mark.parametrize("mix", MIXES, ids=lambda m: m.name)
def test_baseline_equivalence(mix):
    assert_equivalent(mix, CONFIG, lambda: None)


@pytest.mark.parametrize("name", ["Graphene", "PRAC", "MINT"])
def test_guardband_threshold_equivalence(name):
    # Non-integer thresholds (margin-adjusted RDTs) hit the same fast paths.
    threshold = apply_guardband(128, 0.10)  # 115.2
    assert_equivalent(MIXES[0], CONFIG, lambda: build_mitigation(name, threshold))


@pytest.mark.parametrize("rdt", [1024, 128])
def test_blockhammer_equivalence(rdt):
    assert_equivalent(MIXES[0], CONFIG, lambda: BlockHammer(rdt))


def test_blockhammer_throttle_counter_writeback():
    reference = MemorySystem(MIXES[0], CONFIG, BlockHammer(48))
    reference.run()
    assert reference.mitigation.throttled_activations > 0
    fast = MemorySystem(MIXES[0], CONFIG, BlockHammer(48))
    fast.run_fast()
    assert (
        fast.mitigation.throttled_activations
        == reference.mitigation.throttled_activations
    )


def test_adaptive_mitigation_generic_path():
    # AdaptiveMitigation has no array batcher; it runs through the exact
    # per-activation generic path and must still match.
    def build():
        return AdaptiveMitigation(
            Graphene, StaticThresholdPolicy(256.0), check_every=512
        )

    assert_equivalent(MIXES[0], CONFIG, build)


@pytest.mark.parametrize("name", ["Graphene", "MINT", "PRAC"])
def test_window_reset_equivalence(name):
    # A tREFW small enough to fire several tracking-window resets per run,
    # and a threshold low enough that the array-backed tracker tables
    # actually cross and issue preventive actions between resets.
    config = SystemConfig(window_ns=20_000.0, t_refw_ns=4_000.0)
    reference = assert_equivalent(
        MIXES[0], config, lambda: build_mitigation(name, 12)
    )
    assert reference.preventive_refreshes + reference.rank_blocks > 0


def test_trace_replay_equivalence():
    records = []
    for i in range(200):
        for core in range(4):
            records.append(
                TraceRecord(core=core, bank=(i * 7 + core) % 8, row=(i * 3) % 40)
            )
    mix = MIXES[0]

    def players():
        return [TracePlayer(records, core) for core in range(4)]

    reference = MemorySystem(
        mix, CONFIG, Graphene(8), address_sources=players()
    ).run()
    fast = MemorySystem(
        mix, CONFIG, Graphene(8), address_sources=players()
    ).run_fast()
    assert fingerprint(fast) == fingerprint(reference)
    assert reference.preventive_refreshes > 0


def test_shared_streams_match_fresh_runs():
    # One materialized stream set serves many runs of a mix (the sweep's
    # sharing pattern) without perturbing any of them.
    mix = MIXES[0]
    streams = [
        CoreStream(source)
        for source in MemorySystem(mix, CONFIG)._generators
    ]
    for build in (lambda: None, lambda: Graphene(128), lambda: build_mitigation("MINT", 96)):
        shared = run_fast(MemorySystem(mix, CONFIG, build()), streams)
        fresh = MemorySystem(mix, CONFIG, build()).run()
        assert fingerprint(shared) == fingerprint(fresh)


def test_run_fast_validates_stream_count():
    system = MemorySystem(MIXES[0], CONFIG)
    streams = [CoreStream(source) for source in system._generators]
    with pytest.raises(SimulationError):
        run_fast(system, streams[:3])
