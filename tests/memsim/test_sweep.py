"""Tests for the sharded, cached Fig. 14 sweep runner."""

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.memsim.sweep import SweepCache, SweepResult, SweepSpec, run_sweep

#: A grid small enough for test runtimes but with >1 of everything.
SPEC = SweepSpec(
    mitigations=("Graphene", "MINT"),
    rdts=(128.0,),
    margins=(0.0, 0.50),
    n_mixes=2,
    window_ns=10_000.0,
)


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(SPEC)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        SweepSpec(mitigations=())
    with pytest.raises(ConfigurationError):
        SweepSpec(n_mixes=0)
    with pytest.raises(ConfigurationError):
        SweepSpec(engine="turbo")
    with pytest.raises(ConfigurationError):
        SweepSpec(margins=(1.5,))  # invalid guardband fails eagerly


def test_cells_cover_grid_in_order():
    cells = SPEC.cells()
    assert cells == [
        (128.0, 0.0, "Graphene"),
        (128.0, 0.0, "MINT"),
        (128.0, 0.50, "Graphene"),
        (128.0, 0.50, "MINT"),
    ]


def test_sweep_shape_and_values(sweep):
    assert set(sweep.per_mix) == set(SPEC.cells())
    for cell, mix_speedups in sweep.per_mix.items():
        assert set(mix_speedups) == {"mix00", "mix01"}
        for value in mix_speedups.values():
            assert 0.0 < value <= 1.5
    # Geomean accessor agrees with the table view.
    table = sweep.table()
    for rdt, margin, name in SPEC.cells():
        assert table[(rdt, margin, name)] == sweep.speedup(rdt, margin, name)


def test_engines_bit_identical(sweep):
    reference = run_sweep(
        replace(SPEC, engine="reference")
    )
    assert reference.per_mix == sweep.per_mix


def test_jobs_invariance(sweep):
    sharded = run_sweep(SPEC, n_jobs=2)
    assert sharded.per_mix == sweep.per_mix


def test_cache_roundtrip(sweep, tmp_path):
    cache = SweepCache(tmp_path)
    first = run_sweep(SPEC, cache=cache)
    assert first.per_mix == sweep.per_mix
    assert cache.load(cache.key(SPEC)) is not None
    # A hit returns the stored speedups without recomputing.
    second = run_sweep(SPEC, cache=cache)
    assert second.per_mix == sweep.per_mix
    # A different recipe is a clean miss.
    other = replace(SPEC, window_ns=12_000.0)
    assert cache.load(cache.key(other)) is None


def _inject_raw(cache, key, blob, kind="sweep"):
    """Plant a raw payload blob under ``key`` with a matching checksum
    (tampered/version-skewed entry: integrity passes, decoding fails)."""
    import sqlite3
    import time

    from repro.store.db import payload_checksum

    store = cache.result_store
    store._ensure_created()
    with sqlite3.connect(store.path) as conn:
        conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, kind, checksum, payload, nbytes, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (key, kind, payload_checksum(blob), blob, len(blob),
             time.time()),
        )


def test_cache_corruption_degrades_to_miss(sweep, tmp_path):
    cache = SweepCache(tmp_path)
    run_sweep(SPEC, cache=cache)
    _inject_raw(cache, cache.key(SPEC), b"{not json")
    assert cache.load(cache.key(SPEC)) is None
    recomputed = run_sweep(SPEC, cache=cache)  # recomputes and re-stores
    assert recomputed.per_mix == sweep.per_mix
    assert cache.load(cache.key(SPEC)) is not None


def test_cache_corruption_is_counted_and_evicted(sweep, tmp_path):
    from repro import obs

    cache = SweepCache(tmp_path)
    run_sweep(SPEC, cache=cache)
    key = cache.key(SPEC)
    for blob in (
        b"{not json",                    # truncated writer
        b"[]",                           # wrong payload root
        b'{"kind": "something-else"}',   # wrong entry kind
        b'{"kind": "fig14-sweep"}',      # right kind, missing body
    ):
        _inject_raw(cache, key, blob)
        with obs.tracing() as recorder:
            assert cache.load(key) is None
        assert recorder.counters.get("cache.corrupt") == 1, blob
        assert "cache.hit" not in recorder.counters, blob
        assert not cache.has(key), blob  # evicted from the store

    with obs.tracing() as recorder:
        recomputed = run_sweep(SPEC, cache=cache)
    assert recomputed.per_mix == sweep.per_mix
    assert recorder.counters.get("cache.miss") == 1
    assert recorder.counters.get("cache.store") == 1

    with obs.tracing() as recorder:
        assert run_sweep(SPEC, cache=cache).per_mix == sweep.per_mix
    assert recorder.counters.get("cache.hit") == 1


def test_payload_roundtrip(sweep):
    payload = json.loads(json.dumps(sweep.to_payload()))
    restored = SweepResult.from_payload(payload)
    assert restored.spec == sweep.spec
    assert restored.per_mix == sweep.per_mix


def test_cache_resolve_env(monkeypatch, tmp_path):
    monkeypatch.setenv("VRD_CACHE_DIR", str(tmp_path / "env-cache"))
    cache = SweepCache.resolve()
    assert cache is not None and cache.root == tmp_path / "env-cache"
    monkeypatch.setenv("VRD_CACHE_DIR", "")
    assert SweepCache.resolve() is None
    explicit = SweepCache.resolve(tmp_path / "explicit")
    assert explicit is not None and explicit.root == tmp_path / "explicit"
