"""Tests for the memory-system simulation."""

import pytest

from repro.errors import SimulationError
from repro.memsim import MemorySystem, SystemConfig, standard_mixes
from repro.memsim.metrics import geometric_mean, normalized_weighted_speedup
from repro.mitigations import Mint, Para, build_mitigation

MIX = standard_mixes(1)[0]
FAST = SystemConfig(window_ns=20_000.0)


def test_baseline_deterministic():
    a = MemorySystem(MIX, FAST).run()
    b = MemorySystem(MIX, FAST).run()
    assert a.requests_per_core == b.requests_per_core
    assert a.total_requests > 100


def test_memory_intensity_orders_throughput():
    # Heavier-MPKI cores complete more memory requests per unit time.
    result = MemorySystem(MIX, FAST).run()
    mpkis = [w.mpki for w in MIX.workloads]
    throughputs = result.throughput_per_core()
    heaviest = mpkis.index(max(mpkis))
    lightest = mpkis.index(min(mpkis))
    assert throughputs[heaviest] > throughputs[lightest]


def test_refresh_costs_some_throughput():
    with_ref = MemorySystem(MIX, SystemConfig(window_ns=50_000.0)).run()
    without = MemorySystem(
        MIX, SystemConfig(window_ns=50_000.0, refresh_enabled=False)
    ).run()
    assert without.total_requests >= with_ref.total_requests


def test_mitigation_slows_system_down():
    baseline = MemorySystem(MIX, FAST).run()
    mitigated = MemorySystem(MIX, FAST, Para(64)).run()
    speedup = normalized_weighted_speedup(mitigated, baseline)
    assert speedup < 1.0
    assert mitigated.preventive_refreshes > 0


def test_lower_threshold_hurts_more():
    baseline = MemorySystem(MIX, FAST).run()
    mild = normalized_weighted_speedup(
        MemorySystem(MIX, FAST, Mint(1024)).run(), baseline
    )
    harsh = normalized_weighted_speedup(
        MemorySystem(MIX, FAST, Mint(64)).run(), baseline
    )
    assert harsh < mild


def test_fig14_ordering_at_low_threshold():
    """The paper's qualitative result: tracker-based mitigations (Graphene,
    PRAC) cost far less than probabilistic/minimalist ones (PARA, MINT) at
    low thresholds."""
    config = SystemConfig(window_ns=40_000.0)
    baseline = MemorySystem(MIX, config).run()
    speedups = {}
    for name in ("Graphene", "PRAC", "PARA", "MINT"):
        run = MemorySystem(MIX, config, build_mitigation(name, 64)).run()
        speedups[name] = normalized_weighted_speedup(run, baseline)
    assert speedups["Graphene"] > speedups["PARA"]
    assert speedups["PRAC"] > speedups["MINT"]
    assert speedups["PARA"] < 0.95
    assert speedups["MINT"] < 0.95


def test_metrics_validation():
    baseline = MemorySystem(MIX, FAST).run()
    other = MemorySystem(standard_mixes(2)[1], FAST).run()
    with pytest.raises(SimulationError):
        normalized_weighted_speedup(other, baseline)
    with pytest.raises(SimulationError):
        geometric_mean([])
    assert geometric_mean([0.5, 2.0]) == pytest.approx(1.0)


def test_latency_and_hit_rate_metrics():
    result = MemorySystem(MIX, FAST).run()
    latencies = result.mean_latency_per_core()
    assert len(latencies) == 4
    # Memory latency sits between a bare row hit and a few conflicts.
    for latency in latencies:
        assert 10.0 < latency < 500.0
    assert 0.0 < result.row_hit_rate < 1.0
    assert result.row_hits + result.row_misses == result.total_requests


def test_mitigation_raises_latency():
    baseline = MemorySystem(MIX, FAST).run()
    mitigated = MemorySystem(MIX, FAST, Mint(64)).run()
    assert (
        sum(mitigated.mean_latency_per_core())
        > sum(baseline.mean_latency_per_core())
    )


def test_config_validation():
    with pytest.raises(SimulationError):
        SystemConfig(window_ns=0.0)
    with pytest.raises(SimulationError):
        SystemConfig(n_banks=0)
