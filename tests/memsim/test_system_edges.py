"""Edge cases in the MemorySystem timing loop.

Each scenario asserts the reference engine's behavior AND that the fast
core reproduces it bit-for-bit — these are exactly the branches (refresh
stalls, rank blocks overlapping victim refreshes, empty tracking windows,
out-of-range victims) where the two loops could plausibly diverge.
"""

from typing import List, Tuple

from repro.memsim import MemorySystem, SystemConfig, standard_mixes
from repro.memsim.system import _T_RFC
from repro.memsim.trace import SyntheticWorkload, WorkloadMix
from repro.mitigations import Mint
from repro.mitigations.base import Mitigation, PreventiveAction

MIX = standard_mixes(1)[0]


def fingerprint(result):
    return (
        result.requests_per_core,
        result.total_latency_per_core,
        result.row_hits,
        result.row_misses,
        result.preventive_refreshes,
        result.rank_blocks,
    )


def run_both(mix, config, build):
    reference = MemorySystem(mix, config, build()).run()
    fast = MemorySystem(mix, config, build()).run_fast()
    assert fingerprint(fast) == fingerprint(reference)
    return reference


def test_refresh_stall_mid_request():
    # A sparse request stream straddles the first tREFI boundary: the
    # request that lands inside the refresh is pushed past it, inflating
    # its latency by up to tRFC.
    sparse = SyntheticWorkload("sparse", 0.5, 0.0, hot_rows=4)
    mix = WorkloadMix("sparse-mix", (sparse,) * 4)
    config = SystemConfig(window_ns=8_000.0)
    with_refresh = run_both(mix, config, lambda: None)
    without = MemorySystem(
        mix, SystemConfig(window_ns=8_000.0, refresh_enabled=False)
    ).run()
    delays = [
        stalled - free
        for stalled, free in zip(
            with_refresh.total_latency_per_core, without.total_latency_per_core
        )
    ]
    # At least one core's request was stalled by a meaningful part of tRFC.
    assert max(delays) > _T_RFC / 2
    assert with_refresh.total_requests <= without.total_requests


def test_rank_block_overlapping_victim_refresh():
    # MINT at a tiny threshold issues RFMs (rank block + victim refreshes
    # on the same completion instant); the overlap resolution must match.
    config = SystemConfig(window_ns=20_000.0)
    reference = run_both(MIX, config, lambda: Mint(8, seed=3))
    assert reference.rank_blocks > 0
    assert reference.preventive_refreshes > 0
    baseline = MemorySystem(MIX, config).run()
    assert reference.total_requests < baseline.total_requests


class WindowCounter(Mitigation):
    """Counts tREFW boundaries, never acts."""

    name = "WindowCounter"

    def __init__(self):
        super().__init__(1024.0)
        self.windows_seen = 0

    def on_activate(self, bank: int, row: int, now: float) -> PreventiveAction:
        return PreventiveAction()

    def on_refresh_window(self, now: float) -> None:
        self.windows_seen += 1


def test_refresh_window_fires_without_actions():
    # Tracking windows tick even when the mitigation never acts, and an
    # action-free mitigated run matches the baseline's timing exactly.
    config = SystemConfig(window_ns=20_000.0, t_refw_ns=3_000.0)
    reference_system = MemorySystem(MIX, config, WindowCounter())
    reference = reference_system.run()
    fast_system = MemorySystem(MIX, config, WindowCounter())
    fast = fast_system.run_fast()
    assert fingerprint(fast) == fingerprint(reference)
    assert reference_system.mitigation.windows_seen >= 4
    assert (
        fast_system.mitigation.windows_seen
        == reference_system.mitigation.windows_seen
    )
    assert reference.preventive_refreshes == 0
    baseline = MemorySystem(MIX, config).run()
    assert reference.requests_per_core == baseline.requests_per_core
    assert reference.total_latency_per_core == baseline.total_latency_per_core


class StrayVictimRefresher(Mitigation):
    """Issues victim refreshes that include out-of-range banks."""

    name = "StrayVictims"

    def __init__(self, victims: List[Tuple[int, int]], every: int = 50):
        super().__init__(1024.0)
        self.victims = victims
        self.every = every
        self._acts = 0

    def on_activate(self, bank: int, row: int, now: float) -> PreventiveAction:
        self._acts += 1
        if self._acts % self.every == 0:
            return self._count_action(
                PreventiveAction(victim_refreshes=list(self.victims))
            )
        return PreventiveAction()


def test_out_of_range_victim_banks_skipped():
    # Victims aimed at banks outside [0, n_banks) are ignored: timing is
    # identical to a mitigation issuing only the in-range victims.
    config = SystemConfig(window_ns=20_000.0)
    in_range = [(2, 10), (5, 11)]
    stray = in_range + [(-1, 3), (config.n_banks, 4), (999, 5)]
    with_stray = run_both(MIX, config, lambda: StrayVictimRefresher(stray))
    clean = MemorySystem(
        MIX, config, StrayVictimRefresher(in_range)
    ).run()
    assert with_stray.requests_per_core == clean.requests_per_core
    assert with_stray.total_latency_per_core == clean.total_latency_per_core
    # The stray victims still count as requested refreshes (the reference
    # counts the action's full victim list), so the counters differ there.
    assert with_stray.preventive_refreshes > clean.preventive_refreshes
