"""Tests for synthetic workloads and mixes."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim.trace import (
    HIGH_MPKI_WORKLOADS,
    AddressGenerator,
    SyntheticWorkload,
    WorkloadMix,
    standard_mixes,
)


def test_pool_is_highly_memory_intensive():
    assert len(HIGH_MPKI_WORKLOADS) == 15
    assert all(w.is_highly_memory_intensive for w in HIGH_MPKI_WORKLOADS)


def test_gap_ns_inverse_of_mpki():
    light = SyntheticWorkload("light", 20.0, 0.5)
    heavy = SyntheticWorkload("heavy", 80.0, 0.5)
    assert heavy.gap_ns() < light.gap_ns()


def test_workload_validation():
    with pytest.raises(ConfigurationError):
        SyntheticWorkload("bad", 0.0, 0.5)
    with pytest.raises(ConfigurationError):
        SyntheticWorkload("bad", 20.0, 1.0)
    with pytest.raises(ConfigurationError):
        SyntheticWorkload("bad", 20.0, 0.5, hot_rows=0)


def test_standard_mixes_deterministic():
    a = standard_mixes(15)
    b = standard_mixes(15)
    assert len(a) == 15
    assert [m.workloads for m in a] == [m.workloads for m in b]
    assert all(len(m.workloads) == 4 for m in a)


def test_mix_requires_four():
    with pytest.raises(ConfigurationError):
        WorkloadMix("bad", HIGH_MPKI_WORKLOADS[:3])


def test_address_generator_locality():
    workload = SyntheticWorkload("w", 30.0, 0.9, hot_rows=16)
    gen = AddressGenerator(workload, core=0, n_banks=8, n_rows=4096, seed=0)
    addresses = [gen.next_address() for _ in range(2000)]
    repeats = sum(a == b for a, b in zip(addresses, addresses[1:]))
    assert repeats / len(addresses) > 0.8


def test_address_generator_bounds_and_hot_bias():
    workload = SyntheticWorkload("w", 30.0, 0.1, hot_rows=16)
    gen = AddressGenerator(workload, core=1, n_banks=8, n_rows=4096, seed=0)
    from collections import Counter

    rows = Counter()
    for _ in range(5000):
        bank, row = gen.next_address()
        assert 0 <= bank < 8
        assert 0 <= row < 4096
        rows[row] += 1
    assert len(rows) <= 16
    counts = sorted(rows.values(), reverse=True)
    assert counts[0] > counts[-1] * 2  # zipf bias


def test_cores_use_disjoint_regions():
    workload = SyntheticWorkload("w", 30.0, 0.0, hot_rows=16)
    rows0 = {AddressGenerator(workload, 0, 8, 4096, 0).next_address()[1]
             for _ in range(200)}
    rows1 = {AddressGenerator(workload, 1, 8, 4096, 0).next_address()[1]
             for _ in range(200)}
    assert not rows0 & rows1
