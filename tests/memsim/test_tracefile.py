"""Tests for address-trace capture and replay."""

import pytest

from repro.errors import SimulationError
from repro.memsim import MemorySystem, SystemConfig, standard_mixes
from repro.memsim.tracefile import (
    TracePlayer,
    TraceRecord,
    load_trace,
    record_trace,
    save_trace,
)

MIX = standard_mixes(1)[0]


def test_record_and_roundtrip(tmp_path):
    records = record_trace(MIX, n_requests_per_core=50)
    assert len(records) == 200
    path = tmp_path / "trace.txt"
    save_trace(records, path)
    restored = load_trace(path)
    assert restored == records


def test_load_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("# header\n\n0 1 2\n")
    assert load_trace(path) == [TraceRecord(0, 1, 2)]


def test_load_rejects_malformed(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("0 1\n")
    with pytest.raises(SimulationError):
        load_trace(path)
    path.write_text("0 1 x\n")
    with pytest.raises(SimulationError):
        load_trace(path)
    path.write_text("0 -1 2\n")
    with pytest.raises(SimulationError):
        load_trace(path)
    path.write_text("# only comments\n")
    with pytest.raises(SimulationError):
        load_trace(path)


def test_player_wraps():
    records = [TraceRecord(0, 1, 10), TraceRecord(0, 2, 20)]
    player = TracePlayer(records, core=0)
    sequence = [player.next_address() for _ in range(5)]
    assert sequence == [(1, 10), (2, 20), (1, 10), (2, 20), (1, 10)]
    with pytest.raises(SimulationError):
        TracePlayer(records, core=3)


def test_replay_reproduces_synthetic_run():
    """Replaying a captured trace gives the same throughput as the live
    synthetic generators that produced it."""
    config = SystemConfig(window_ns=20_000.0)
    live = MemorySystem(MIX, config).run()
    records = record_trace(
        MIX,
        n_requests_per_core=max(live.requests_per_core) + 10,
        n_banks=config.n_banks,
        n_rows=config.n_rows,
        seed=config.seed,
    )
    players = [TracePlayer(records, core) for core in range(4)]
    replayed = MemorySystem(MIX, config, address_sources=players).run()
    assert replayed.requests_per_core == live.requests_per_core


def test_address_sources_validation():
    with pytest.raises(SimulationError):
        MemorySystem(MIX, SystemConfig(), address_sources=[None, None])
