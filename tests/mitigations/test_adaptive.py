"""Tests for the dynamically reconfigured mitigation wrapper."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigations import Graphene
from repro.mitigations.adaptive import AdaptiveMitigation, RECONFIGURE_STALL_NS
from repro.profiling import StaticThresholdPolicy


class _ScriptedPolicy:
    """Policy returning a scripted sequence of thresholds."""

    def __init__(self, values):
        self.values = list(values)
        self.index = 0

    def threshold(self):
        value = self.values[min(self.index, len(self.values) - 1)]
        self.index += 1
        return value


def test_delegates_to_inner():
    adaptive = AdaptiveMitigation(Graphene, StaticThresholdPolicy(64.0))
    assert isinstance(adaptive.inner, Graphene)
    triggered = 0
    for i in range(40):
        if not adaptive.on_activate(0, 7, float(i)).is_noop:
            triggered += 1
    assert triggered == 1  # same behavior as a bare Graphene(64)


def test_reconfigures_on_threshold_change():
    policy = _ScriptedPolicy([1024.0, 1024.0, 64.0])
    adaptive = AdaptiveMitigation(Graphene, policy, check_every=10)
    stalls = 0
    for i in range(35):
        action = adaptive.on_activate(0, 7, float(i))
        if action.rank_block_ns >= RECONFIGURE_STALL_NS:
            stalls += 1
    assert adaptive.reconfigurations >= 1
    assert stalls == adaptive.reconfigurations
    assert adaptive.threshold == 64.0


def test_hysteresis_suppresses_small_changes():
    policy = _ScriptedPolicy([1000.0, 980.0, 1020.0, 990.0])
    adaptive = AdaptiveMitigation(Graphene, policy, check_every=5,
                                  hysteresis=0.05)
    for i in range(40):
        adaptive.on_activate(0, 7, float(i))
    assert adaptive.reconfigurations == 0


def test_counters_track_inner():
    adaptive = AdaptiveMitigation(Graphene, StaticThresholdPolicy(64.0))
    for i in range(40):
        adaptive.on_activate(0, 7, float(i))
    assert adaptive.preventive_refreshes == adaptive.inner.preventive_refreshes
    assert adaptive.preventive_refreshes > 0


def test_validation():
    with pytest.raises(ConfigurationError):
        AdaptiveMitigation(Graphene, StaticThresholdPolicy(64.0), check_every=0)
    with pytest.raises(ConfigurationError):
        AdaptiveMitigation(
            Graphene, StaticThresholdPolicy(64.0), hysteresis=1.0
        )
