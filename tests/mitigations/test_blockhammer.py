"""Tests for the BlockHammer-style throttling mitigation."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import MemorySystem, SystemConfig, standard_mixes
from repro.memsim.metrics import normalized_weighted_speedup
from repro.mitigations import BlockHammer, build_mitigation
from repro.mitigations.blockhammer import THROTTLE_DELAY_NS


def test_within_quota_untouched():
    bh = BlockHammer(1000)
    actions = [bh.on_activate(0, 7, float(i)) for i in range(bh.quota)]
    assert all(a.is_noop for a in actions)
    assert bh.throttled_activations == 0


def test_over_quota_throttled_on_own_bank():
    bh = BlockHammer(100)
    for i in range(bh.quota + 10):
        action = bh.on_activate(3, 7, float(i))
    assert not action.is_noop
    assert action.bank_delays == [(3, THROTTLE_DELAY_NS)]
    assert not action.victim_refreshes
    assert action.rank_block_ns == 0.0
    assert bh.throttled_activations == 10


def test_count_min_never_underestimates():
    """The filter may overestimate (hash collisions) but a row activated k
    times always has estimate >= k."""
    bh = BlockHammer(10_000, filter_size=64)
    for i in range(200):
        bh.on_activate(0, i % 7, float(i))
    for row in range(7):
        exact = len([i for i in range(200) if i % 7 == row])
        assert bh._estimate(0, row) >= exact


def test_window_reset_clears_filters():
    bh = BlockHammer(100)
    for i in range(bh.quota + 5):
        bh.on_activate(0, 7, float(i))
    bh.on_refresh_window(0.0)
    assert bh.on_activate(0, 7, 1.0).is_noop


def test_banks_tracked_independently():
    bh = BlockHammer(100)
    for i in range(bh.quota):
        bh.on_activate(0, 7, float(i))
    assert bh.on_activate(1, 7, 0.0).is_noop


def test_build_by_name():
    assert isinstance(build_mitigation("blockhammer", 512), BlockHammer)


def test_validation():
    with pytest.raises(ConfigurationError):
        BlockHammer(100, filter_size=0)
    with pytest.raises(ConfigurationError):
        BlockHammer(100, quota_fraction=0.0)
    with pytest.raises(ConfigurationError):
        BlockHammer(100, n_hashes=0)


def test_throttling_slows_hot_workloads():
    mix = standard_mixes(1)[0]
    config = SystemConfig(window_ns=40_000.0)
    baseline = MemorySystem(mix, config).run()
    throttled = MemorySystem(mix, config, BlockHammer(64)).run()
    speedup = normalized_weighted_speedup(throttled, baseline)
    assert speedup < 1.0
