"""Batcher-vs-reference equivalence for the array-backed fast paths.

Drives each :mod:`repro.mitigations.fast` batcher exactly the way the
simulation fast core does — screened epochs absorbed through
``on_activate_many``, dangerous or budget-exhausted activations stepped —
against a twin reference instance fed one ``on_activate`` per activation,
and asserts identical actions at identical positions plus identical final
counters. This is the contract that makes the fast core bit-identical.
"""

import numpy as np
import pytest

from repro.mitigations import (
    AdaptiveMitigation,
    BlockHammer,
    Graphene,
    Mint,
    Para,
    Prac,
)
from repro.mitigations.fast import (
    BlockHammerBatcher,
    GenericBatcher,
    GrapheneBatcher,
    MintBatcher,
    ParaBatcher,
    PracBatcher,
    make_batcher,
)
from repro.profiling.policy import StaticThresholdPolicy

N_BANKS = 4
N_ROWS = 64


def hot_sequence(length, n_hot_rows=20, seed=3):
    """Hot-row-biased (bank, row) activations, like real workloads."""
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n_hot_rows + 1) ** 1.2
    weights /= weights.sum()
    rows = rng.choice(n_hot_rows, size=length, p=weights)
    banks = rng.integers(0, N_BANKS, size=length)
    return list(zip(banks.tolist(), rows.tolist()))


def drive_and_compare(batcher, reference, sequence, windows_at=()):
    """Run the fast core's epoch protocol; compare with per-act reference."""
    windows_at = set(windows_at)
    budget = batcher.budget()
    danger = batcher.danger
    by_bank = batcher.danger_by_bank
    pending_banks, pending_rows = [], []

    def flush():
        nonlocal pending_banks, pending_rows
        if pending_banks:
            batcher.on_activate_many(pending_banks, pending_rows)
            pending_banks, pending_rows = [], []

    now = 0.0
    for index, (bank, row) in enumerate(sequence):
        if index in windows_at:
            flush()
            batcher.on_refresh_window(now)
            reference.on_refresh_window(now)
            budget = batcher.budget()
        ref_action = reference.on_activate(bank, row, now)

        key = bank if by_bank else bank * N_ROWS + row
        take_step = key in danger
        if not take_step:
            if budget < 0:
                budget = batcher.budget()
            if budget > 0:
                # Screened activations are guaranteed action-free.
                assert ref_action.is_noop, f"screened action at act {index}"
                pending_banks.append(bank)
                pending_rows.append(row)
                budget -= 1
                if budget == 0:
                    flush()
                    budget = batcher.budget()
            else:
                take_step = True
        if take_step:
            flush()
            action = batcher.step(bank, row, now)
            if ref_action.is_noop:
                assert action is None, f"spurious action at act {index}"
            else:
                assert action is not None, f"missing action at act {index}"
                victims, rank_ns, bank_delays = action
                assert list(victims) == list(ref_action.victim_refreshes)
                assert rank_ns == ref_action.rank_block_ns
                assert list(bank_delays) == list(ref_action.bank_delays)
            budget = -1
        now += 10.0

    flush()
    batcher.finalize()
    mitigation = batcher.mitigation
    assert mitigation.preventive_refreshes == reference.preventive_refreshes
    assert mitigation.rank_blocks == reference.rank_blocks


@pytest.mark.parametrize("threshold", [512, 64, 12])
def test_graphene_batcher_equivalence(threshold):
    batcher = GrapheneBatcher(Graphene(threshold), N_BANKS, N_ROWS)
    drive_and_compare(
        batcher, Graphene(threshold), hot_sequence(4000),
        windows_at=(1500, 3000),
    )


@pytest.mark.parametrize("threshold", [512, 64, 12])
def test_prac_batcher_equivalence(threshold):
    batcher = PracBatcher(Prac(threshold), N_BANKS, N_ROWS)
    drive_and_compare(
        batcher, Prac(threshold), hot_sequence(4000),
        windows_at=(1500, 3000),
    )


@pytest.mark.parametrize("threshold", [512, 64, 12])
def test_mint_batcher_equivalence(threshold):
    # Stochastic: twin instances share a seed; the batcher's chunked draws
    # must align with the reference's per-activation draws.
    batcher = MintBatcher(Mint(threshold, seed=9), N_BANKS)
    drive_and_compare(
        batcher, Mint(threshold, seed=9), hot_sequence(4000),
        windows_at=(1500, 3000),
    )


@pytest.mark.parametrize("threshold", [512, 64])
def test_para_batcher_equivalence(threshold):
    batcher = ParaBatcher(Para(threshold, seed=9))
    drive_and_compare(batcher, Para(threshold, seed=9), hot_sequence(4000))


@pytest.mark.parametrize("threshold", [256, 48])
def test_blockhammer_batcher_equivalence(threshold):
    batcher = BlockHammerBatcher(BlockHammer(threshold), N_BANKS)
    reference = BlockHammer(threshold)
    drive_and_compare(
        batcher, reference, hot_sequence(4000), windows_at=(2000,)
    )
    assert batcher.mitigation.throttled_activations == (
        reference.throttled_activations
    )


def test_graphene_spillover_equivalence():
    # Force a tiny Misra-Gries table so the spillover/eviction branch runs.
    def tiny():
        graphene = Graphene(64)
        graphene.table_size = 3
        return graphene

    batcher = GrapheneBatcher(tiny(), N_BANKS, N_ROWS)
    # Wide row set on few banks so tables overflow constantly.
    rng = np.random.default_rng(5)
    sequence = [
        (int(b), int(r))
        for b, r in zip(
            rng.integers(0, 2, size=3000), rng.integers(0, 40, size=3000)
        )
    ]
    drive_and_compare(batcher, tiny(), sequence, windows_at=(1200,))


def test_generic_batcher_is_exact_passthrough():
    def build():
        return AdaptiveMitigation(
            Graphene, StaticThresholdPolicy(32.0), check_every=64
        )

    batcher = make_batcher(build(), N_BANKS, N_ROWS)
    assert isinstance(batcher, GenericBatcher)
    assert batcher.budget() == 0
    drive_and_compare(batcher, build(), hot_sequence(1500))


def test_make_batcher_dispatch():
    assert isinstance(make_batcher(Graphene(64), 8, 128), GrapheneBatcher)
    assert isinstance(make_batcher(Prac(64), 8, 128), PracBatcher)
    assert isinstance(make_batcher(Para(64), 8, 128), ParaBatcher)
    assert isinstance(make_batcher(Mint(64), 8, 128), MintBatcher)
    assert isinstance(make_batcher(BlockHammer(64), 8, 128), BlockHammerBatcher)
    # Unknown mechanisms and table-unsafe streams take the generic path.
    adaptive = AdaptiveMitigation(Graphene, StaticThresholdPolicy(64.0))
    assert isinstance(make_batcher(adaptive, 8, 128), GenericBatcher)
    assert isinstance(
        make_batcher(Graphene(64), 8, 128, allow_tables=False), GenericBatcher
    )
