"""Unit tests for the four mitigation mechanisms."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigations import (
    Graphene,
    Mint,
    Para,
    Prac,
    apply_guardband,
    build_mitigation,
)
from repro.mitigations.base import RFM_BLOCK_NS, neighbors_of
from repro.mitigations.para import para_probability
from repro.mitigations.prac import quantize_pow2


class TestBase:
    def test_apply_guardband(self):
        assert apply_guardband(128, 0.25) == 96.0
        assert apply_guardband(128, 0.0) == 128.0
        with pytest.raises(ConfigurationError):
            apply_guardband(128, 1.0)
        with pytest.raises(ConfigurationError):
            apply_guardband(0, 0.1)

    def test_neighbors_of(self):
        assert neighbors_of(2, 10) == [(2, 9), (2, 11)]
        assert neighbors_of(0, 0) == [(0, 1)]

    def test_build_by_name(self):
        for name, cls in [
            ("graphene", Graphene), ("PRAC", Prac), ("para", Para),
            ("MINT", Mint),
        ]:
            assert isinstance(build_mitigation(name, 1024), cls)
        with pytest.raises(ConfigurationError):
            build_mitigation("silverbullet", 1024)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            Graphene(0.5)


class TestGraphene:
    def test_triggers_at_half_threshold(self):
        graphene = Graphene(64)
        actions = [graphene.on_activate(0, 7, float(i)) for i in range(40)]
        triggered = [a for a in actions if not a.is_noop]
        assert len(triggered) == 1
        # Triggers exactly when the count reaches threshold/2 = 32.
        assert actions[31].victim_refreshes == [(0, 6), (0, 8)]

    def test_counter_resets_after_refresh(self):
        graphene = Graphene(64)
        triggers = 0
        for i in range(128):
            if not graphene.on_activate(0, 7, float(i)).is_noop:
                triggers += 1
        assert triggers == 4  # every 32 activations

    def test_window_reset(self):
        graphene = Graphene(64)
        for i in range(20):
            graphene.on_activate(0, 7, float(i))
        graphene.on_refresh_window(100.0)
        # Table cleared: 31 more activations must not trigger.
        actions = [graphene.on_activate(0, 7, float(i)) for i in range(31)]
        assert all(a.is_noop for a in actions)

    def test_tracks_multiple_banks_independently(self):
        graphene = Graphene(64)
        for i in range(31):
            assert graphene.on_activate(0, 7, float(i)).is_noop
            assert graphene.on_activate(1, 7, float(i)).is_noop
        assert not graphene.on_activate(0, 7, 99.0).is_noop

    def test_misra_gries_no_hot_row_escapes(self):
        """Even with table pressure from many cold rows, a row activated
        refresh_at times more than the spill level must trigger."""
        graphene = Graphene(64, activations_per_window=1024)
        triggered = False
        cold = 0
        for i in range(6000):
            # interleave: hot row every other activation, cold rows cycle
            if i % 2 == 0:
                action = graphene.on_activate(0, 7, float(i))
                triggered = triggered or not action.is_noop
            else:
                cold = (cold + 1) % 500
                graphene.on_activate(0, 1000 + cold, float(i))
        assert triggered


class TestPrac:
    def test_quantize_pow2(self):
        assert quantize_pow2(51.2) == 64
        assert quantize_pow2(102.4) == 128
        assert quantize_pow2(1.0) == 1
        assert quantize_pow2(0.3) == 1

    def test_backoff_cadence(self):
        prac = Prac(64)
        actions = [prac.on_activate(0, 7, float(i)) for i in range(200)]
        triggers = [i for i, a in enumerate(actions) if not a.is_noop]
        assert triggers  # fires periodically
        assert all(a.rank_block_ns == RFM_BLOCK_NS for i, a in
                   enumerate(actions) if i in triggers)
        # Period equals the quantized back-off threshold.
        gaps = {b - a for a, b in zip(triggers, triggers[1:])}
        assert gaps == {prac.backoff_at}

    def test_quantization_step_function(self):
        # Footnote 16: RDT 128 -> 115 changes nothing.
        assert Prac(128).backoff_at == Prac(115.2).backoff_at

    def test_refresh_window_clears(self):
        prac = Prac(64)
        for i in range(prac.backoff_at - 1):
            prac.on_activate(0, 7, float(i))
        prac.on_refresh_window(0.0)
        assert prac.on_activate(0, 7, 1.0).is_noop


class TestPara:
    def test_probability_scales_inverse_threshold(self):
        assert Para(128).p > Para(1024).p
        assert para_probability(1e12) < 1e-10

    def test_low_threshold_approaches_certain_refresh(self):
        assert Para(2, failure_probability=1e-30).p > 0.999

    def test_refresh_rate_matches_p(self):
        para = Para(64, seed=3)
        triggered = sum(
            not para.on_activate(0, 7, float(i)).is_noop for i in range(20_000)
        )
        assert triggered / 20_000 == pytest.approx(para.p, rel=0.1)

    def test_security_property(self):
        # P(attacker reaches T activations with no refresh) <= 1e-10.
        para = Para(500)
        assert (1 - para.p) ** 500 <= 1e-10 * 1.01


class TestMint:
    def test_rfm_cadence(self):
        mint = Mint(128)
        actions = [mint.on_activate(0, 7, float(i)) for i in range(200)]
        triggers = [i for i, a in enumerate(actions) if not a.is_noop]
        gaps = {b - a for a, b in zip(triggers, triggers[1:])}
        assert gaps == {mint.rfm_every}
        assert mint.rfm_every == 32  # 128 / 4

    def test_quantization_step_function(self):
        assert Mint(128).rfm_every == Mint(115.2).rfm_every

    def test_sampled_row_is_refreshed(self):
        mint = Mint(64, seed=1)
        victims = []
        for i in range(64):
            action = mint.on_activate(0, 7, float(i))
            victims.extend(action.victim_refreshes)
        # Only row 7 was activated, so the sample must be row 7.
        assert set(victims) <= {(0, 6), (0, 8)}
        assert victims

    def test_counts_per_bank(self):
        mint = Mint(64)
        for i in range(mint.rfm_every - 1):
            assert mint.on_activate(0, 7, float(i)).is_noop
        # A different bank has its own count.
        assert mint.on_activate(1, 7, 0.0).is_noop
        assert not mint.on_activate(0, 7, 99.0).is_noop
