"""Property-based tests for the observability core.

Driven by seeded :mod:`random` (no extra dependencies): random operation
streams are applied to shard recorders and the merge laws are checked
exactly — counters add, histograms add bucket-wise, span stats combine —
for every merge order. Values are kept integral so float addition is
exactly associative and snapshot equality can be ``==``.
"""

import itertools
import math
import random

import pytest

from repro import obs
from repro.obs.recorder import N_BUCKETS, bucket_index, bucket_upper_bound


class ManualClock:
    """Deterministic nanosecond clock for driving spans."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


def make_recorder():
    wall, cpu = ManualClock(), ManualClock()
    return obs.Recorder(wall_clock=wall, cpu_clock=cpu), wall, cpu


# ----------------------------------------------------------------------
# Random operation streams
# ----------------------------------------------------------------------


def random_ops(rng: random.Random, n: int):
    """A stream of recorder operations with small shared name pools (so
    shards genuinely collide on metric names) and integral values."""
    ops = []
    for _ in range(n):
        kind = rng.choice(("counter", "histogram", "span", "gauge"))
        if kind == "counter":
            ops.append(("counter", f"c{rng.randrange(4)}", rng.randint(1, 50)))
        elif kind == "histogram":
            ops.append((
                "histogram", f"h{rng.randrange(3)}",
                rng.choice((0, 1, 3, 1024, 10**6, 10**9)) + rng.randint(0, 9),
            ))
        elif kind == "gauge":
            ops.append(("gauge", f"g{rng.randrange(2)}", rng.randint(0, 99)))
        else:
            ops.append((
                "span", f"s{rng.randrange(3)}",
                rng.randint(1, 1000), rng.randint(1, 1000),
            ))
    return ops


def apply_ops(recorder, wall, cpu, ops) -> None:
    for op in ops:
        if op[0] == "counter":
            recorder.counter_add(op[1], op[2])
        elif op[0] == "histogram":
            recorder.histogram_observe(op[1], op[2])
        elif op[0] == "gauge":
            recorder.gauge_set(op[1], op[2])
        else:
            with recorder.span(op[1]):
                wall.advance(op[2])
                cpu.advance(op[3])


def strip_gauges(snapshot: dict) -> dict:
    return {key: value for key, value in snapshot.items() if key != "gauges"}


# ----------------------------------------------------------------------
# Span nesting
# ----------------------------------------------------------------------


def test_nested_spans_aggregate_by_path():
    recorder, wall, cpu = make_recorder()
    with recorder.span("a"):
        wall.advance(10)
        cpu.advance(5)
        with recorder.span("b"):
            wall.advance(100)
            cpu.advance(50)
        wall.advance(1)
    assert set(recorder.spans) == {"a", "a/b"}
    assert recorder.spans["a/b"].wall_ns == 100
    assert recorder.spans["a/b"].cpu_ns == 50
    assert recorder.spans["a"].wall_ns == 111
    assert recorder.spans["a"].cpu_ns == 55


def test_span_reentry_aggregates_not_duplicates():
    recorder, wall, cpu = make_recorder()
    for duration in (5, 50, 500):
        with recorder.span("hot"):
            wall.advance(duration)
    stats = recorder.spans["hot"]
    assert stats.count == 3
    assert stats.wall_ns == 555
    assert stats.min_wall_ns == 5
    assert stats.max_wall_ns == 500


def test_span_exits_cleanly_on_exception():
    recorder, wall, cpu = make_recorder()
    with pytest.raises(RuntimeError):
        with recorder.span("outer"):
            with recorder.span("inner"):
                wall.advance(3)
                raise RuntimeError("boom")
    # The stack must unwind fully; later spans get un-prefixed paths.
    with recorder.span("later"):
        wall.advance(1)
    assert set(recorder.spans) == {"outer", "outer/inner", "later"}


@pytest.mark.parametrize("seed", [7, 77, 777])
def test_random_span_trees_close_their_stack(seed):
    rng = random.Random(seed)
    recorder, wall, cpu = make_recorder()

    def walk(depth):
        for _ in range(rng.randint(1, 3)):
            with recorder.span(f"n{rng.randrange(4)}"):
                wall.advance(rng.randint(1, 9))
                if depth < 3 and rng.random() < 0.5:
                    walk(depth + 1)

    walk(0)
    assert recorder._stack == []
    total = sum(stats.count for stats in recorder.spans.values())
    assert total > 0
    for path, stats in recorder.spans.items():
        assert stats.min_wall_ns <= stats.max_wall_ns
        assert stats.count * stats.min_wall_ns <= stats.wall_ns


# ----------------------------------------------------------------------
# Merge semantics
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 12, 123, 1234])
def test_shard_merge_equals_serial_in_any_order(seed):
    """The core law behind cross-process snapshots: k worker shards merged
    in ANY order produce exactly the serial recording of all their ops
    (gauges excluded — they are documented last-write-wins)."""
    rng = random.Random(seed)
    shards = [random_ops(rng, rng.randint(5, 25)) for _ in range(3)]

    serial, wall, cpu = make_recorder()
    for ops in shards:
        apply_ops(serial, wall, cpu, ops)
    expected = strip_gauges(serial.snapshot())

    snapshots = []
    for ops in shards:
        recorder, shard_wall, shard_cpu = make_recorder()
        apply_ops(recorder, shard_wall, shard_cpu, ops)
        snapshots.append(recorder.snapshot())

    for order in itertools.permutations(range(len(shards))):
        parent = obs.Recorder()
        for index in order:
            parent.merge_snapshot(snapshots[index])
        assert strip_gauges(parent.snapshot()) == expected


def test_gauges_are_last_write_wins_by_merge_order():
    first = obs.Recorder()
    first.gauge_set("g", 1.0)
    second = obs.Recorder()
    second.gauge_set("g", 2.0)
    parent = obs.Recorder()
    parent.merge_snapshot(first.snapshot())
    parent.merge_snapshot(second.snapshot())
    assert parent.gauges["g"] == 2.0


def test_merge_none_is_noop_and_bad_format_raises():
    recorder = obs.Recorder()
    recorder.counter_add("c")
    before = recorder.snapshot()
    recorder.merge_snapshot(None)
    assert recorder.snapshot() == before
    with pytest.raises(ValueError):
        recorder.merge_snapshot({"format": 999})


@pytest.mark.parametrize("seed", [5, 55])
def test_merge_through_json_round_trip(seed):
    """Snapshots cross process boundaries as JSON; merging the decoded
    payload must equal merging the original."""
    import json

    rng = random.Random(seed)
    recorder, wall, cpu = make_recorder()
    apply_ops(recorder, wall, cpu, random_ops(rng, 30))
    snapshot = recorder.snapshot()
    decoded = json.loads(json.dumps(snapshot))

    direct = obs.Recorder()
    direct.merge_snapshot(snapshot)
    via_json = obs.Recorder()
    via_json.merge_snapshot(decoded)
    assert direct.snapshot() == via_json.snapshot()


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [3, 33, 333])
def test_histogram_summary_matches_observations(seed):
    rng = random.Random(seed)
    values = [rng.randint(0, 10**9) for _ in range(rng.randint(1, 200))]
    histogram = obs.Histogram()
    for value in values:
        histogram.observe(value)
    assert histogram.count == len(values)
    assert histogram.total == sum(values)
    assert histogram.min == min(values)
    assert histogram.max == max(values)
    assert histogram.mean == sum(values) / len(values)
    assert sum(histogram.buckets.values()) == len(values)


def test_bucket_bounds_are_consistent():
    for value in (0, 1, 2, 3, 1023, 1024, 1025, 10**12, 2.0**60):
        index = bucket_index(value)
        assert 0 <= index < N_BUCKETS
        if 0 < index < N_BUCKETS - 1:
            # frexp buckets are [2**(e-1), 2**e): closed below, open above.
            assert bucket_upper_bound(index - 1) <= value < bucket_upper_bound(index)
    assert bucket_upper_bound(N_BUCKETS - 1) == math.inf
    assert bucket_index(-5.0) == 0  # negatives clamp, never crash


def test_empty_histogram_payload_merges_as_identity():
    empty = obs.Histogram()
    target = obs.Histogram()
    target.observe(7)
    before = target.to_payload()
    target.merge_payload(empty.to_payload())
    assert target.to_payload() == before


# ----------------------------------------------------------------------
# Active-recorder plumbing
# ----------------------------------------------------------------------


def test_noop_is_default_and_inert():
    assert obs.active() is obs.NOOP
    assert not obs.enabled()
    obs.NOOP.counter_add("ignored", 5)
    span_a = obs.NOOP.span("a")
    span_b = obs.NOOP.span("b")
    assert span_a is span_b  # one shared null span, no allocation
    assert obs.NOOP.snapshot()["counters"] == {}


def test_tracing_scope_installs_and_restores():
    assert obs.active() is obs.NOOP
    with obs.tracing() as recorder:
        assert obs.active() is recorder
        assert obs.enabled()
        with obs.tracing() as inner:
            assert obs.active() is inner
        assert obs.active() is recorder
    assert obs.active() is obs.NOOP


def test_tracing_restores_on_exception():
    with pytest.raises(RuntimeError):
        with obs.tracing():
            raise RuntimeError("boom")
    assert obs.active() is obs.NOOP


def test_clear_resets_everything():
    recorder, wall, cpu = make_recorder()
    apply_ops(recorder, wall, cpu, random_ops(random.Random(9), 20))
    recorder.clear()
    assert recorder.snapshot() == obs.NOOP.snapshot()
