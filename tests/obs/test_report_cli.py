"""CLI coverage for run reports: ``repro report`` and ``--trace``.

Every JSON report the CLI can emit is checked against the golden schema in
``tests/obs/golden/report_schema.json`` — the stable contract downstream
tooling (and the CI ``obs-smoke`` job) parses.
"""

import json
from pathlib import Path

from repro import obs
from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "report_schema.json"


def load_schema() -> dict:
    return json.loads(GOLDEN.read_text())


def assert_matches_schema(payload: dict) -> None:
    schema = load_schema()
    for key in schema["required"]:
        assert key in payload, f"report missing key {key!r}"
    assert payload["kind"] == schema["kind"]
    assert payload["format"] == schema["format"]
    assert payload["snapshot_format"] == schema["snapshot_format"]
    for key in schema["meta_required"]:
        assert key in payload["meta"], f"meta missing key {key!r}"
    for path, stats in payload["spans"].items():
        assert sorted(stats) == sorted(schema["span_fields"]), path
        assert stats["count"] >= 1
        assert stats["min_wall_ns"] <= stats["max_wall_ns"]
    for name, value in payload["counters"].items():
        assert isinstance(value, (int, float)), name
    for name, histogram in payload["histograms"].items():
        assert sorted(histogram) == sorted(schema["histogram_fields"]), name
        assert sum(histogram["buckets"].values()) == histogram["count"]
    # The payload must round-trip through the report loader unchanged.
    assert obs.RunReport.from_payload(payload).to_payload() == payload


def test_report_json_matches_golden_schema(capsys):
    assert main(["report", "--json", "--seed", "7"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert_matches_schema(payload)
    assert payload["meta"]["command"] == "report"
    assert payload["meta"]["seed"] == 7
    assert "report.workload" in payload["spans"]
    # The mini-workload must exercise every instrumented subsystem.
    counters = payload["counters"]
    for prefix in ("memsim.", "rdt.", "bender.", "ecc.", "fastfaults."):
        assert any(name.startswith(prefix) for name in counters), prefix


def test_report_output_file_round_trips(capsys, tmp_path):
    path = tmp_path / "report.json"
    assert main(["report", "--seed", "11", "-o", str(path)]) == 0
    out = capsys.readouterr().out
    assert "report.workload" in out  # human-readable table on stdout
    loaded = obs.RunReport.load(path)
    assert_matches_schema(loaded.to_payload())
    assert loaded.meta["seed"] == 11


def test_report_jobs_round_trip(capsys):
    """-j 2 ships worker snapshots across process boundaries; the merged
    report must still satisfy the same schema."""
    assert main(["report", "--json", "-j", "2", "--seed", "7"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert_matches_schema(payload)
    assert payload["meta"]["jobs"] == 2
    assert payload["gauges"]["sweep.jobs"] == 2
    assert "sweep.worker_wall_ns" in payload["histograms"]


def test_fig14_trace_out_writes_schema_valid_report(capsys, tmp_path):
    trace_path = tmp_path / "fig14-trace.json"
    assert main([
        "fig14", "--mixes", "1", "--window", "2000", "--no-cache",
        "--cache-dir", str(tmp_path / "cache"),
        "--trace-out", str(trace_path),
    ]) == 0
    capsys.readouterr()
    payload = json.loads(trace_path.read_text())
    assert_matches_schema(payload)
    assert payload["meta"]["command"] == "fig14"
    assert payload["meta"]["exit_code"] == 0
    assert payload["counters"]["sweep.cells"] >= 1


def test_measure_trace_reports_to_stderr(capsys):
    assert main([
        "measure", "M1", "--row", "64", "-n", "100", "--trace",
    ]) == 0
    captured = capsys.readouterr()
    assert "max/min ratio" in captured.out  # normal output untouched
    assert "rdt.measurements" in captured.err
