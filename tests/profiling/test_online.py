"""Tests for the online RDT profiler."""

import math

import pytest

from repro.core.rdt import FastRdtMeter
from repro.errors import ConfigurationError, MeasurementError
from repro.profiling import (
    GuardbandedMinPolicy,
    OnlineRdtProfiler,
    StaticThresholdPolicy,
)
from tests.conftest import make_module


ROWS = list(range(40, 50))


def make_profiler(module, config, **kwargs):
    return OnlineRdtProfiler(module, ROWS, config, **kwargs)


class TestProfiler:
    def test_idle_tick_measures_and_charges_time(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        performed = profiler.idle_tick(budget_ns=2e6)
        assert performed >= 1
        assert profiler.measurements_done == performed
        assert profiler.time_spent_ns > 0

    def test_bigger_budget_more_measurements(self, module, reference_config):
        small = make_profiler(module, reference_config)
        large = make_profiler(module, reference_config)
        n_small = small.idle_tick(budget_ns=1e6)
        n_large = large.idle_tick(budget_ns=2e7)
        assert n_large > n_small

    def test_min_estimate_tightens_monotonically(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        estimates = []
        for _ in range(15):
            profiler.idle_tick(budget_ns=2e6)
            estimates.append(profiler.global_min_estimate())
        assert all(b <= a for a, b in zip(estimates, estimates[1:]))

    def test_round_robin_covers_all_rows(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        for _ in range(len(ROWS)):
            profiler.idle_tick(budget_ns=1.0)  # exactly one measurement each
        counts = [p.n_measurements for p in profiler.profile().values()]
        assert all(count == 1 for count in counts)

    def test_focus_min_strategy_revisits_holder(self, module, reference_config):
        profiler = make_profiler(module, reference_config, strategy="focus_min")
        for _ in range(40):
            profiler.idle_tick(budget_ns=1.0)
        profiles = profiler.profile()
        holder = profiler.min_holder()
        counts = {row: p.n_measurements for row, p in profiles.items()}
        assert counts[holder] >= max(
            count for row, count in counts.items() if row != holder
        ) - 1

    def test_convergence_excess_against_long_series(
        self, module, reference_config
    ):
        meter = FastRdtMeter(module)
        true_minima = {
            row: meter.measure_series(row, reference_config, 2000).min
            for row in ROWS
        }
        profiler = make_profiler(module, reference_config)
        # One measurement per row first, so the averaged row set is fixed.
        for _ in range(len(ROWS)):
            profiler.idle_tick(budget_ns=1.0)
        early = profiler.convergence_excess(true_minima)
        for _ in range(60):
            profiler.idle_tick(budget_ns=5e6)
        late = profiler.convergence_excess(true_minima)
        assert late <= early
        assert late >= -0.25  # estimates may dip below a 2000-long min

    def test_history_tracking(self, module, reference_config):
        profiler = make_profiler(module, reference_config, keep_history=True)
        profiler.idle_tick(budget_ns=5e6)
        assert any(p.history for p in profiler.profile().values())

    def test_history_is_bounded_ring(self, module, reference_config):
        profiler = make_profiler(
            module, reference_config, keep_history=True, history_limit=3
        )
        for _ in range(8 * len(ROWS)):
            profiler.idle_tick(budget_ns=1.0)  # one measurement per tick
        for profile in profiler.profile().values():
            successes = profile.n_measurements - profile.failed_sweeps
            assert len(profile.history) == min(3, successes)
            # The ring keeps the most recent value, not the oldest.
            if successes and not math.isnan(profile.last_rdt):
                assert profile.history[-1] == profile.last_rdt

    def test_history_unbounded_when_disabled(self, module, reference_config):
        profiler = make_profiler(
            module, reference_config, keep_history=True, history_limit=None
        )
        for _ in range(6 * len(ROWS)):
            profiler.idle_tick(budget_ns=1.0)
        totals = [
            p.n_measurements - p.failed_sweeps
            for p in profiler.profile().values()
        ]
        lengths = [len(p.history) for p in profiler.profile().values()]
        assert lengths == totals

    def test_history_limit_validation(self, module, reference_config):
        with pytest.raises(ConfigurationError):
            make_profiler(module, reference_config, history_limit=0)

    def test_validation(self, module, reference_config):
        with pytest.raises(ConfigurationError):
            OnlineRdtProfiler(module, [], reference_config)
        with pytest.raises(ConfigurationError):
            make_profiler(module, reference_config, strategy="wat")
        profiler = make_profiler(module, reference_config)
        with pytest.raises(ConfigurationError):
            profiler.idle_tick(budget_ns=0.0)
        with pytest.raises(MeasurementError):
            profiler.min_estimate(40)  # nothing measured yet
        with pytest.raises(MeasurementError):
            profiler.global_min_estimate()


class TestPolicies:
    def test_static(self):
        policy = StaticThresholdPolicy(500.0)
        assert policy.threshold() == 500.0
        with pytest.raises(ConfigurationError):
            StaticThresholdPolicy(0.0)

    def test_guardbanded_min_bootstrap_then_tracks(
        self, module, reference_config
    ):
        profiler = make_profiler(module, reference_config)
        policy = GuardbandedMinPolicy(profiler, margin=0.2, bootstrap=64.0)
        assert policy.threshold() == 64.0  # no estimate yet
        profiler.idle_tick(budget_ns=5e6)
        threshold = policy.threshold()
        assert math.isfinite(threshold)
        assert threshold == pytest.approx(
            profiler.global_min_estimate() * 0.8
        )

    def test_guardband_validation(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        with pytest.raises(ConfigurationError):
            GuardbandedMinPolicy(profiler, margin=1.0)
        with pytest.raises(ConfigurationError):
            GuardbandedMinPolicy(profiler, bootstrap=0.0)


class TestHistoryAllocation:
    def test_no_history_storage_when_disabled(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        profiler.idle_tick(1e9)
        assert all(p.history is None for p in profiler.profile().values())


class TestPrefetch:
    def test_validation(self, module, reference_config):
        with pytest.raises(ConfigurationError):
            make_profiler(module, reference_config, prefetch=-1)

    def test_prefetch_matches_per_epoch_series(self, reference_config):
        """Buffered measurements equal the per-epoch batch streams: each
        row's consumed values are exactly the concatenation of its
        ``online-{epoch}`` series."""
        module = make_module()
        module.disable_interference_sources()
        k = 3
        profiler = make_profiler(
            module, reference_config, keep_history=True,
            history_limit=None, prefetch=k,
        )
        for _ in range(25):
            profiler.idle_tick(1.0)

        reference_module = make_module()
        reference_module.disable_interference_sources()
        meter = FastRdtMeter(reference_module)
        for row, profile in profiler.profile().items():
            n = profile.n_measurements
            reference = []
            for epoch in range((n + k - 1) // k):
                series = meter.measure_series(
                    row, reference_config, k, stream=f"online-{epoch}"
                )
                reference.extend(float(v) for v in series.values)
            consumed = reference[:n]
            valid = [v for v in consumed if not math.isnan(v)]
            assert list(profile.history) == valid
            assert profile.failed_sweeps == sum(
                1 for v in consumed if math.isnan(v)
            )
            if valid:
                assert profile.min_rdt == min(valid)

    def test_prefetch_zero_is_the_scalar_reference(
        self, module, reference_config
    ):
        scalar = make_profiler(module, reference_config, keep_history=True)
        # Fresh module with the same seed for the explicit prefetch=0 twin.
        twin_module = make_module()
        twin_module.disable_interference_sources()
        twin = OnlineRdtProfiler(
            twin_module, ROWS, reference_config,
            keep_history=True, prefetch=0,
        )
        for _ in range(10):
            scalar.idle_tick(1.0)
            twin.idle_tick(1.0)
        for row in ROWS:
            assert list(scalar.profile()[row].history) == list(
                twin.profile()[row].history
            )


class TestCostTable:
    def test_cost_lookup_matches_summation(self, module, reference_config):
        profiler = make_profiler(module, reference_config)
        from repro.core.rdt import HammerSweep

        sweep = HammerSweep.from_guess(1800.0)
        grid = sweep.grid()
        probes = [float("nan"), grid[0] - 1.0, float(grid[0]),
                  float(grid[17]), float(grid[-1]), grid[-1] + 10.0]
        for value in probes:
            trials = grid if math.isnan(value) else grid[grid <= value]
            expected = float(
                sum(profiler._trial_time_ns(h) for h in trials)
            )
            assert profiler._measurement_cost_ns(sweep, value) == expected
