"""Tests for the attack-vs-mitigation security evaluation."""

import numpy as np
import pytest

from repro.core.config import TestConfig
from repro.core.patterns import CHECKERED0
from repro.errors import ConfigurationError
from repro.security import (
    attack_escape,
    exposure_per_window,
    exposure_windows,
    profile_and_attack,
)
from tests.conftest import make_module


class TestExposure:
    def test_graphene_bound_is_half_threshold(self):
        rng = np.random.default_rng(0)
        assert exposure_per_window("graphene", 1000, rng) == 500.0

    def test_prac_bound_is_quantized(self):
        rng = np.random.default_rng(0)
        # 0.8 * 1000 = 800 -> nearest power of two is 1024: PRAC's pow2
        # compare can exceed the configured threshold.
        assert exposure_per_window("prac", 1000, rng) == 1024.0

    def test_para_exposure_is_random_and_bounded_in_distribution(self):
        rng = np.random.default_rng(0)
        samples = [exposure_per_window("para", 1000, rng) for _ in range(2000)]
        # Mean ~ 1 / (2p) with p ~ 23/T.
        expected_mean = 1000.0 / (2 * 23.03)
        assert np.mean(samples) == pytest.approx(expected_mean, rel=0.2)

    def test_none_is_unbounded(self):
        rng = np.random.default_rng(0)
        assert exposure_per_window("none", 1.0, rng) == 1e7

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            exposure_per_window("blockhammer", 1000, np.random.default_rng(0))


class TestAttack:
    def test_no_mitigation_flips_immediately(self, module, reference_config):
        outcome = attack_escape(
            module, 100, reference_config, "none", threshold=1.0, windows=10
        )
        assert outcome.flipped
        assert outcome.first_flip_window == 0

    def test_generous_threshold_survives(self, module, reference_config):
        # Threshold far below any instantaneous RDT: deterministic
        # trackers never expose the victim enough.
        outcome = attack_escape(
            module, 100, reference_config, "graphene", threshold=50.0,
            windows=500,
        )
        assert outcome.survived
        assert outcome.min_exposure_margin > 0

    def test_overconfigured_tracker_fails(self, module, reference_config):
        # Threshold far above the row's RDT: the first window flips.
        outcome = attack_escape(
            module, 100, reference_config, "graphene", threshold=1e6,
            windows=50,
        )
        assert outcome.flipped

    def test_outcome_reports_min_rdt(self, module, reference_config):
        outcome = attack_escape(
            module, 100, reference_config, "graphene", threshold=50.0,
            windows=200,
        )
        assert outcome.min_rdt_seen > 0
        assert outcome.windows == 200

    def test_deterministic_given_seed(self, module, reference_config):
        a = attack_escape(
            module, 101, reference_config, "para", threshold=500.0,
            windows=100, seed=9,
        )
        module2 = make_module()
        module2.disable_interference_sources()
        b = attack_escape(
            module2, 101, reference_config, "para", threshold=500.0,
            windows=100, seed=9,
        )
        assert a.flipped == b.flipped
        assert a.min_rdt_seen == b.min_rdt_seen

    def test_validation(self, module, reference_config):
        with pytest.raises(ConfigurationError):
            attack_escape(
                module, 100, reference_config, "graphene", threshold=100.0,
                windows=0,
            )


class TestProfileAndAttack:
    def test_margin_protects_prac(self, module, reference_config):
        """PRAC's power-of-two rounding makes a no-margin configuration
        risky; a >=10% guardband restores the headroom (the paper's
        recommendation)."""
        flips_tight = 0
        flips_margin = 0
        for victim in range(40, 52):
            tight = profile_and_attack(
                module, victim, reference_config, "prac",
                profile_measurements=5, margin=0.0, windows=400, seed=victim,
            )
            guarded = profile_and_attack(
                module, victim, reference_config, "prac",
                profile_measurements=5, margin=0.25, windows=400, seed=victim,
            )
            flips_tight += tight.flipped
            flips_margin += guarded.flipped
        assert flips_margin <= flips_tight

    def test_validation(self, module, reference_config):
        with pytest.raises(ConfigurationError):
            profile_and_attack(
                module, 100, reference_config, "prac",
                profile_measurements=0, margin=0.1,
            )
        with pytest.raises(ConfigurationError):
            profile_and_attack(
                module, 100, reference_config, "prac",
                profile_measurements=5, margin=1.0,
            )


class TestBatchedAttack:
    """The batched exposure path must be bit-identical to scalar draws."""

    def test_exposure_windows_match_scalar_draws(self):
        for kind, threshold in (
            ("graphene", 1000.0),
            ("prac", 1000.0),
            ("para", 1000.0),
            ("para", 30.0),  # per_hammer >= 1 deterministic branch
            ("mint", 1000.0),
            ("none", 1.0),
        ):
            batched_rng = np.random.default_rng(7)
            scalar_rng = np.random.default_rng(7)
            batch = exposure_windows(kind, threshold, batched_rng, 500)
            scalar = np.array(
                [
                    exposure_per_window(kind, threshold, scalar_rng)
                    for _ in range(500)
                ]
            )
            np.testing.assert_array_equal(batch, scalar)
            # Both generators must have consumed the same stream.
            assert batched_rng.random() == scalar_rng.random()

    def test_attack_escape_batched_equals_scalar(self, reference_config):
        for kind in ("para", "mint", "graphene", "none"):
            batched_module = make_module(seed=5)
            batched_module.disable_interference_sources()
            scalar_module = make_module(seed=5)
            scalar_module.disable_interference_sources()
            config = TestConfig(
                CHECKERED0, t_agg_on_ns=batched_module.timing.tRAS
            )
            batched = attack_escape(
                batched_module, 100, config, kind, threshold=800.0,
                windows=300, seed=3, batched=True,
            )
            scalar = attack_escape(
                scalar_module, 100, config, kind, threshold=800.0,
                windows=300, seed=3, batched=False,
            )
            assert batched == scalar

    def test_exposure_windows_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            exposure_windows("para", 1000.0, rng, 0)
        with pytest.raises(ConfigurationError):
            exposure_windows("para", 0.5, rng, 10)
        with pytest.raises(ConfigurationError):
            exposure_windows("blockhammer", 1000.0, rng, 10)
