"""The campaign service end to end: submit, stream, dedup, store.

Each test runs a real :class:`~repro.service.server.ServiceThread` over a
temporary store and talks to it through
:class:`~repro.service.client.ServiceClient` — the same stack
``python -m repro serve`` / ``submit`` use.
"""

import json
import threading

import pytest

from repro.core import AdaptiveConfig, CHECKERED0, TestConfig
from repro.core.engine import CampaignEngine
from repro.core.store import campaign_to_dict, config_to_dict
from repro.memsim.sweep import SweepSpec, run_sweep
from repro.service import ServiceThread
from repro.service.client import ServiceError
from repro.store import DEFAULT_STORE_FILENAME, ResultStore

MODULE_ID = "M1"
SEED = 23
PAIRS = [(0, 3), (0, 17)]
CONFIGS = [TestConfig(CHECKERED0, t_agg_on_ns=35.0)]
N = 12


@pytest.fixture()
def service(tmp_path):
    store = ResultStore(tmp_path / DEFAULT_STORE_FILENAME)
    with ServiceThread(store=store, n_jobs=2) as thread:
        yield thread


def _campaign_request(n_measurements=N):
    return {
        "kind": "campaign",
        "module_id": MODULE_ID,
        "seed": SEED,
        "pairs": [list(pair) for pair in PAIRS],
        "configs": [config_to_dict(config) for config in CONFIGS],
        "n_measurements": n_measurements,
    }


def test_campaign_computed_then_hit_bit_identical(service):
    with service.client() as client:
        first = client.submit(_campaign_request())
        second = client.submit(_campaign_request())
    assert first["status"] == "computed"
    assert second["status"] == "hit"
    assert second["payload"] == first["payload"]
    assert second["key"] == first["key"]

    # Bit-identical to a direct engine run of the same recipe — sharding
    # through the service worker pool must not change results.
    direct = CampaignEngine(
        MODULE_ID, CONFIGS, n_measurements=N, seed=SEED, n_jobs=1,
    ).run_pairs(PAIRS)
    assert first["payload"] == campaign_to_dict(direct)


def test_streaming_event_order(service):
    events = []
    with service.client() as client:
        events = list(client.events(_campaign_request()))
    assert events[0]["event"] == "accepted"
    assert events[0]["deduped"] is False
    assert events[-1]["event"] == "result"
    rows = [event for event in events if event["event"] == "rows"]
    assert rows  # progress streamed before the terminal result
    assert [event["done_shards"] for event in rows] == list(
        range(1, len(rows) + 1)
    )
    assert all(event["shards"] == len(rows) for event in rows)


def test_adaptive_round_trip_matches_engine(service):
    adaptive = AdaptiveConfig(min_measurements=4, max_measurements=N)
    request = dict(_campaign_request(), kind="adaptive",
                   adaptive=adaptive.to_dict())
    rounds = []
    with service.client() as client:
        result = client.submit(
            request,
            on_event=lambda e: rounds.append(e)
            if e.get("event") == "round" else None,
        )
    assert result["status"] == "computed"
    assert result["kind"] == "adaptive"
    assert [event["round"] for event in rounds] == list(
        range(1, len(rounds) + 1)
    )

    direct = CampaignEngine(
        MODULE_ID, CONFIGS, n_measurements=N, seed=SEED, n_jobs=1,
        schedule="adaptive", adaptive=adaptive,
    ).run_pairs(PAIRS)
    assert result["payload"] == direct.to_payload()


def test_sweep_round_trip_matches_run_sweep(service):
    spec = SweepSpec(
        mitigations=("PARA",), rdts=(1024.0,), margins=(0.0,),
        n_mixes=2, window_ns=2_000.0, n_rows=1 << 8,
    )
    request = {"kind": "sweep", "spec": {
        "mitigations": list(spec.mitigations),
        "rdts": list(spec.rdts),
        "margins": list(spec.margins),
        "n_mixes": spec.n_mixes,
        "window_ns": spec.window_ns,
        "n_rows": spec.n_rows,
    }}
    with service.client() as client:
        first = client.submit(request)
        second = client.submit(request)
    assert first["status"] == "computed"
    assert second["status"] == "hit"
    # Compare in wire form: JSON turns the spec's tuples into lists.
    direct = json.loads(json.dumps(run_sweep(spec).to_payload()))
    assert first["payload"] == direct
    assert second["payload"] == first["payload"]


def test_inflight_dedup_single_compute(service):
    # A slow enough job that a second submission lands while the first
    # is still computing.
    request = _campaign_request(n_measurements=400)
    results = {}

    def submit(name, client):
        accepted = {}

        def watch(event):
            if event.get("event") == "accepted":
                accepted.update(event)

        results[name] = (client.submit(request, on_event=watch), accepted)

    with service.client() as a, service.client() as b:
        # Start the job on connection A, then immediately race B in.
        thread_a = threading.Thread(target=submit, args=("a", a))
        thread_a.start()
        thread_b = threading.Thread(target=submit, args=("b", b))
        thread_b.start()
        thread_a.join()
        thread_b.join()
        with service.client() as probe:
            stats = probe.stats()

    (result_a, accepted_a) = results["a"]
    (result_b, accepted_b) = results["b"]
    # One compute, both subscribers got the same terminal payload.
    assert stats["jobs_accepted"] == 1
    assert accepted_a["job_id"] == accepted_b["job_id"]
    assert [accepted_a["deduped"], accepted_b["deduped"]].count(True) == 1
    assert result_a["payload"] == result_b["payload"]
    assert {result_a["status"], result_b["status"]} == {"computed"}


def test_bad_requests_yield_error_events(service):
    with service.client() as client:
        with pytest.raises(ServiceError, match="unknown job kind"):
            client.submit({"kind": "bogus"})
        with pytest.raises(ServiceError, match="missing 'pairs'"):
            client.submit({"kind": "campaign", "module_id": MODULE_ID,
                           "configs": [], "n_measurements": 1})
        with pytest.raises(ServiceError, match="unknown op"):
            client.submit({"op": "frobnicate"})
        # A config missing required fields surfaces the wrapped
        # MeasurementError as an error event, not a dropped connection.
        with pytest.raises(ServiceError, match="bad test configuration"):
            client.submit({
                "kind": "campaign", "module_id": MODULE_ID, "seed": SEED,
                "pairs": [list(pair) for pair in PAIRS],
                "configs": [{"pattern": "checkered0", "t_agg_on_ns": 35.0}],
                "n_measurements": N,
            })
        # The connection survives error events: a good request still works.
        assert client.ping()


def _progress(index):
    return {"event": "rows", "done_shards": index}


def test_event_buffer_bounds_replay_and_drops_oldest():
    from repro.service.server import Job

    job = Job(1, spec=None, high_water=4)
    for index in range(10):
        job.publish(_progress(index))
    assert len(job.events) == 4
    assert job.events_dropped == 6
    # Newest progress lines survive; the oldest were evicted.
    replayed = [json.loads(line) for line in job.events]
    assert [event["done_shards"] for event in replayed] == [6, 7, 8, 9]


def test_event_buffer_never_evicts_terminal_line():
    from repro.service.server import Job

    job = Job(1, spec=None, high_water=3)
    for index in range(20):
        job.publish(_progress(index))
    job.publish({"event": "result", "status": "computed"}, terminal=True)
    assert job.done
    assert json.loads(job.events[-1])["event"] == "result"
    # A late subscriber still sees the outcome and the end-of-stream
    # marker, in order, within the bounded replay.
    queue = job.subscribe()
    drained = []
    while not queue.empty():
        drained.append(queue.get_nowait())
    assert drained[-1] is None
    assert json.loads(drained[-2])["event"] == "result"
    assert len(drained) <= job.high_water + 1


def test_slow_subscriber_queue_is_bounded():
    from repro import obs
    from repro.service.server import Job

    with obs.tracing() as recorder:
        job = Job(1, spec=None, high_water=4)
        queue = job.subscribe()  # attached live, never drained
        for index in range(50):
            job.publish(_progress(index))
        job.publish({"event": "result", "status": "computed"},
                    terminal=True)
        assert queue.qsize() <= job.high_water + 1
        drained = []
        while not queue.empty():
            drained.append(queue.get_nowait())
        # The stalled client lost old progress lines but always gets the
        # terminal result and the end-of-stream marker.
        assert drained[-1] is None
        assert json.loads(drained[-2])["event"] == "result"
        assert recorder.snapshot()["counters"]["service.events_dropped"] > 0


def test_event_buffer_env_override(monkeypatch):
    from repro.errors import ConfigurationError
    from repro.service.server import (
        DEFAULT_EVENT_BUFFER_HIGH_WATER,
        EVENT_BUFFER_ENV_VAR,
        Job,
        event_buffer_high_water,
    )

    monkeypatch.delenv(EVENT_BUFFER_ENV_VAR, raising=False)
    assert event_buffer_high_water() == DEFAULT_EVENT_BUFFER_HIGH_WATER
    assert Job(1, spec=None).high_water == DEFAULT_EVENT_BUFFER_HIGH_WATER
    monkeypatch.setenv(EVENT_BUFFER_ENV_VAR, "8")
    assert Job(1, spec=None).high_water == 8
    monkeypatch.setenv(EVENT_BUFFER_ENV_VAR, "1")
    with pytest.raises(ConfigurationError, match="must be >= 2"):
        event_buffer_high_water()
    monkeypatch.setenv(EVENT_BUFFER_ENV_VAR, "many")
    with pytest.raises(ConfigurationError, match="must be an integer"):
        event_buffer_high_water()


def test_ping_and_stats(service):
    with service.client() as client:
        assert client.ping()
        client.submit(_campaign_request())
        stats = client.stats()
    assert stats["jobs_accepted"] == 1
    assert stats["inflight"] == 0
    assert stats["n_jobs"] == 2
    assert stats["store"]["entries"] == 1
