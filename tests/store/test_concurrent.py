"""Concurrent access and on-disk corruption for the shared sqlite store.

The VRD_JOBS=4 story: four writer processes and concurrent readers share
one database file with no lost or torn entries. Plus corruption
injection — a truncated database page and a bad payload checksum — with
the same detect/evict/recompute behavior the old file caches had.
"""

import os
import sqlite3
import time
from concurrent.futures import ProcessPoolExecutor

from repro import obs
from repro.core import CHECKERED0, TestConfig
from repro.core.engine import CampaignCache, CampaignEngine
from repro.core.store import campaign_to_dict
from repro.store import DEFAULT_STORE_FILENAME, KIND_CAMPAIGN, ResultStore
from repro.store.legacy import FileCampaignCache

N_PROCS = max(2, int(os.environ.get("VRD_JOBS", "4")))
ENTRIES_PER_WRITER = 40


def _expected_payload(writer_id: int, i: int) -> dict:
    # A payload whose internal fields cross-check the key, so a torn or
    # swapped read is detectable as an inconsistency, not just a diff.
    return {"writer": writer_id, "i": i, "pad": "x" * 200}


def _write_batch(task):
    """Writer process: put one batch of distinct keys into the shared db."""
    db_path, writer_id = task
    store = ResultStore(db_path, auto_migrate=False)
    entries = [
        (f"w{writer_id}-k{i}", KIND_CAMPAIGN, _expected_payload(writer_id, i))
        for i in range(ENTRIES_PER_WRITER)
    ]
    # Interleave singles and a batch so both write paths race.
    for key, kind, payload in entries[: ENTRIES_PER_WRITER // 2]:
        store.put(key, kind, payload)
    written = store.put_many(entries[ENTRIES_PER_WRITER // 2:])
    store.close()
    return ENTRIES_PER_WRITER // 2 + written


def _read_loop(task):
    """Reader process: hammer fetches while writers run; report anomalies."""
    db_path, n_writers, deadline_s = task
    store = ResultStore(db_path, auto_migrate=False)
    anomalies = []
    deadline = time.monotonic() + deadline_s
    i = 0
    while time.monotonic() < deadline:
        writer_id = i % n_writers
        index = i % ENTRIES_PER_WRITER
        key = f"w{writer_id}-k{index}"
        payload, status = store.fetch(key, KIND_CAMPAIGN)
        if status == "corrupt":
            anomalies.append(f"{key}: corrupt")
        elif status == "hit" and payload != _expected_payload(writer_id, index):
            anomalies.append(f"{key}: torn read {payload!r}")
        i += 1
    store.close()
    return anomalies


def test_multiprocess_writers_and_readers_no_lost_or_torn_entries(tmp_path):
    db_path = tmp_path / DEFAULT_STORE_FILENAME
    writer_tasks = [(db_path, writer_id) for writer_id in range(N_PROCS)]
    reader_tasks = [(db_path, N_PROCS, 1.0) for _ in range(2)]
    with ProcessPoolExecutor(max_workers=N_PROCS + len(reader_tasks)) as pool:
        readers = [pool.submit(_read_loop, task) for task in reader_tasks]
        written = list(pool.map(_write_batch, writer_tasks))
        anomalies = [a for future in readers for a in future.result()]

    assert written == [ENTRIES_PER_WRITER] * N_PROCS
    assert anomalies == []

    # No lost entries: every key every writer claimed to write is present,
    # byte-exact.
    store = ResultStore(db_path, auto_migrate=False)
    assert store.entry_count() == N_PROCS * ENTRIES_PER_WRITER
    for writer_id in range(N_PROCS):
        for i in range(ENTRIES_PER_WRITER):
            payload = store.get(f"w{writer_id}-k{i}", KIND_CAMPAIGN)
            assert payload == _expected_payload(writer_id, i)


def test_truncated_database_page_detect_reset_recompute(tmp_path):
    db_path = tmp_path / DEFAULT_STORE_FILENAME
    store = ResultStore(db_path, auto_migrate=False)
    # Enough payload bytes to span several database pages, so a torn-off
    # tail removes real table content.
    store.put_many(
        (f"k{i}", KIND_CAMPAIGN, {"i": i, "pad": "y" * 600})
        for i in range(50)
    )
    store.close()
    size = db_path.stat().st_size
    with open(db_path, "r+b") as handle:
        handle.truncate(size // 2 + 13)
    for sidecar in ("-wal", "-shm"):
        sidecar_path = db_path.parent / (db_path.name + sidecar)
        if sidecar_path.exists():
            sidecar_path.unlink()

    with obs.tracing() as recorder:
        payload, status = store.fetch("k0", KIND_CAMPAIGN)
    assert payload is None and status == "corrupt"
    assert recorder.counters.get("store.corrupt") == 1
    # The malformed file was reset: the store is empty but usable, and a
    # recompute lands cleanly.
    store.put("k0", KIND_CAMPAIGN, {"i": 0, "recomputed": True})
    assert store.get("k0", KIND_CAMPAIGN) == {"i": 0, "recomputed": True}


def test_bad_checksum_parity_with_file_cache(tmp_path):
    """Detect/evict/recompute must look identical from the caller's seat
    whether a corrupt entry lives in the sqlite store or in the old
    file-per-entry cache."""
    configs = [TestConfig(CHECKERED0, t_agg_on_ns=35.0)]
    pairs = [(0, 3), (0, 9)]

    def run():
        return CampaignEngine(
            "M1", configs, n_measurements=8, seed=11, n_jobs=1,
        ).run_pairs(pairs)

    result = run()
    key = CampaignCache.resolve(".").key(
        seed=11, module_id="M1", configs=configs,
        n_measurements=8, pairs=pairs,
    )

    file_cache = FileCampaignCache(tmp_path / "files")
    store_cache = CampaignCache(tmp_path / "store")
    file_cache.store(key, result)
    store_cache.store(key, result)

    # Corrupt both backends: parseable-but-wrong file content, flipped
    # payload bytes (checksum mismatch) in the store.
    file_cache.path_for(key).write_text('{"format_version": 999}')
    with sqlite3.connect(store_cache.result_store.path) as conn:
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (b'{"format_version": 999}', key),
        )

    outcomes = {}
    for name, cache in (("file", file_cache), ("store", store_cache)):
        with obs.tracing() as recorder:
            loaded = cache.load(key)
        assert loaded is None
        assert recorder.counters.get("cache.corrupt") == 1
        # Evicted: the next load is a plain miss, not corrupt again.
        with obs.tracing() as recorder:
            assert cache.load(key) is None
        assert recorder.counters.get("cache.miss") == 1
        assert "cache.corrupt" not in recorder.counters
        # Recompute and re-store: back to a clean hit.
        cache.store(key, run())
        reloaded = cache.load(key)
        assert reloaded is not None
        outcomes[name] = campaign_to_dict(reloaded)

    assert outcomes["file"] == outcomes["store"]
