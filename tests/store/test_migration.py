"""Legacy ``.vrd-cache/`` file entries migrate into the sqlite store.

The three legacy layouts (``<key>.json`` campaign, ``<key>.json``
adaptive, ``fig14-<key>.json`` sweep) must classify correctly, import in
one batch, never clobber newer store entries, and — the transparent
path — appear in a store the first time one is created (or read) next
to them.
"""

import json

import pytest

from repro.core import CHECKERED0, TestConfig
from repro.core.engine import CampaignCache, CampaignEngine
from repro.store import (
    DEFAULT_STORE_FILENAME,
    KIND_ADAPTIVE,
    KIND_CAMPAIGN,
    KIND_SWEEP,
    ResultStore,
)
from repro.store.legacy import (
    FileCampaignCache,
    FileSweepCache,
    classify_legacy_payload,
    import_legacy_entries,
    iter_legacy_entries,
)

MODULE_ID = "M1"
SEED = 77
ROWS = [3, 9]
N = 10


def _configs():
    return [TestConfig(CHECKERED0, t_agg_on_ns=35.0)]


@pytest.fixture()
def legacy_root(tmp_path):
    """A legacy cache directory holding one entry of each kind."""
    from repro.core import AdaptiveConfig
    from repro.memsim.sweep import SweepSpec, run_sweep

    root = tmp_path / "legacy"
    campaign_cache = FileCampaignCache(root)
    sweep_cache = FileSweepCache(root)
    configs = _configs()

    campaign = CampaignEngine(
        MODULE_ID, configs, n_measurements=N, seed=SEED, n_jobs=1,
    ).run_pairs([(0, row) for row in ROWS])
    keyer = CampaignCache.resolve(".")
    campaign_key = keyer.key(
        seed=SEED, module_id=MODULE_ID, configs=configs,
        n_measurements=N, pairs=[(0, row) for row in ROWS],
    )
    campaign_cache.store(campaign_key, campaign)

    adaptive_config = AdaptiveConfig(max_measurements=N)
    adaptive = CampaignEngine(
        MODULE_ID, configs, n_measurements=N, seed=SEED, n_jobs=1,
        schedule="adaptive", adaptive=adaptive_config,
    ).run_pairs([(0, row) for row in ROWS])
    adaptive_key = keyer.key(
        seed=SEED, module_id=MODULE_ID, configs=configs,
        n_measurements=N, pairs=[(0, row) for row in ROWS],
        schedule="adaptive", adaptive=adaptive_config,
    )
    campaign_cache.store_adaptive(adaptive_key, adaptive)

    from repro.memsim.sweep import SweepCache

    spec = SweepSpec(
        mitigations=("PARA",), rdts=(1024.0,), margins=(0.0,),
        n_mixes=1, window_ns=2_000.0, n_rows=1 << 8,
    )
    sweep = run_sweep(spec)
    sweep_key = SweepCache(root / "unused").key(spec)
    sweep_cache.store(sweep_key, sweep)

    # Distractors the migration must skip.
    (root / "notes.json").write_text('{"unrelated": true}')
    (root / "broken.json").write_text("{not json")

    return root, {
        KIND_CAMPAIGN: campaign_key,
        KIND_ADAPTIVE: adaptive_key,
        KIND_SWEEP: sweep_key,
    }


def test_classify_legacy_payload():
    assert classify_legacy_payload(
        "abc", {"format_version": 1, "observations": []}
    ) == KIND_CAMPAIGN
    assert classify_legacy_payload(
        "abc", {"kind": "adaptive-campaign"}
    ) == KIND_ADAPTIVE
    assert classify_legacy_payload(
        "fig14-abc", {"kind": "fig14-sweep"}
    ) == KIND_SWEEP
    assert classify_legacy_payload("fig14-abc", {"kind": "other"}) is None
    assert classify_legacy_payload("abc", {"unrelated": True}) is None
    assert classify_legacy_payload("abc", ["not", "an", "object"]) is None


def test_iter_legacy_entries_classifies_and_strips_prefix(legacy_root):
    root, keys = legacy_root
    entries = {kind: key for key, kind, _ in iter_legacy_entries(root)}
    assert entries == {kind: key for kind, key in keys.items()}


def test_import_is_batched_and_idempotent(legacy_root, tmp_path):
    root, keys = legacy_root
    store = ResultStore(tmp_path / "db.sqlite", auto_migrate=False)
    assert import_legacy_entries(store, root) == 3
    assert store.entry_count() == 3
    for kind, key in keys.items():
        assert store.get(key, kind) is not None
    # Second import adds nothing (INSERT OR IGNORE semantics).
    assert import_legacy_entries(store, root) == 0
    assert store.entry_count() == 3
    # Legacy files stay in place: the import is additive.
    assert sorted(p.name for p in root.glob("*.json"))  # non-empty


def test_import_never_clobbers_store_entries(legacy_root, tmp_path):
    root, keys = legacy_root
    store = ResultStore(tmp_path / "db.sqlite", auto_migrate=False)
    marker = {"authority": "store"}
    store.put(keys[KIND_CAMPAIGN], KIND_CAMPAIGN, marker)
    import_legacy_entries(store, root)
    assert store.get(keys[KIND_CAMPAIGN], KIND_CAMPAIGN) == marker


def test_first_creation_auto_imports(legacy_root):
    root, keys = legacy_root
    store = ResultStore(root / DEFAULT_STORE_FILENAME)
    # A write triggers creation, which imports the neighbors.
    store.put("fresh", KIND_CAMPAIGN, {"fresh": True})
    assert store.entry_count() == 4
    for kind, key in keys.items():
        assert store.get(key, kind) is not None


def test_first_read_auto_imports_for_cache_hit(legacy_root):
    """The transparent path: a CampaignCache over a legacy directory
    serves the legacy entry as a hit on the very first load."""
    root, keys = legacy_root
    cache = CampaignCache(root)
    reloaded = cache.load(keys[KIND_CAMPAIGN])
    assert reloaded is not None
    assert len(reloaded.observations) > 0
    assert (root / DEFAULT_STORE_FILENAME).exists()


def test_legacy_payloads_reload_identically(legacy_root):
    """A migrated entry decodes to the same payload the legacy file held
    (byte-for-byte at the JSON level)."""
    root, keys = legacy_root
    store = ResultStore(root / DEFAULT_STORE_FILENAME)
    legacy_payload = json.loads(
        (root / f"{keys[KIND_CAMPAIGN]}.json").read_text()
    )
    assert store.get(keys[KIND_CAMPAIGN], KIND_CAMPAIGN) == legacy_payload
