"""The sqlite ResultStore's core contract.

Content addressing, kind discrimination, checksum verification, lazy
open, resolution precedence, batched writes, and the corrupt-entry
detect/evict/recompute behavior the old file caches promised.
"""

import json
import sqlite3
import time

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.store import (
    DEFAULT_STORE_FILENAME,
    KIND_ADAPTIVE,
    KIND_CAMPAIGN,
    KIND_FLEET,
    KIND_SWEEP,
    ResultStore,
    resolve_store_path,
)
from repro.store.db import encode_payload, payload_checksum


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / DEFAULT_STORE_FILENAME)


def test_lazy_open_touches_nothing(tmp_path):
    store = ResultStore(tmp_path / "sub" / DEFAULT_STORE_FILENAME)
    assert not (tmp_path / "sub").exists()
    # Reads against a nonexistent database are misses, not file creation.
    assert store.get("k", KIND_CAMPAIGN) is None
    assert store.has("k") is False
    assert store.keys() == []
    assert store.entry_count() == 0
    assert store.stats()["entries"] == 0
    assert not (tmp_path / "sub").exists()


def test_put_fetch_roundtrip(store):
    payload = {"a": 1, "nested": {"x": [1, 2, 3]}}
    store.put("k1", KIND_CAMPAIGN, payload)
    fetched, status = store.fetch("k1", KIND_CAMPAIGN)
    assert status == "hit"
    assert fetched == payload


def test_wrong_kind_is_corrupt_and_evicts(store):
    store.put("k1", KIND_CAMPAIGN, {"a": 1})
    with obs.tracing() as recorder:
        payload, status = store.fetch("k1", KIND_SWEEP)
    assert payload is None and status == "corrupt"
    assert recorder.counters.get("store.corrupt") == 1
    assert not store.has("k1")  # evicted: the slot can recompute cleanly


def test_absent_key_is_a_plain_miss(store):
    store.put("other", KIND_CAMPAIGN, {})
    with obs.tracing() as recorder:
        payload, status = store.fetch("nope", KIND_CAMPAIGN)
    assert payload is None and status == "miss"
    assert recorder.counters.get("store.miss") == 1
    assert "store.corrupt" not in recorder.counters


def test_checksum_mismatch_is_corrupt(store):
    store.put("k1", KIND_CAMPAIGN, {"a": 1})
    with sqlite3.connect(store.path) as conn:
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = ?",
            (b'{"a": 2}', "k1"),
        )
    with obs.tracing() as recorder:
        payload, status = store.fetch("k1", KIND_CAMPAIGN)
    assert payload is None and status == "corrupt"
    assert recorder.counters.get("store.corrupt") == 1
    assert not store.has("k1")


def test_undecodable_payload_with_valid_checksum_is_corrupt(store):
    blob = b"{not json"
    store.put("seed", KIND_CAMPAIGN, {})  # create the schema
    with sqlite3.connect(store.path) as conn:
        conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, kind, checksum, payload, nbytes, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            ("k1", KIND_CAMPAIGN, payload_checksum(blob), blob, len(blob),
             time.time()),
        )
    payload, status = store.fetch("k1", KIND_CAMPAIGN)
    assert payload is None and status == "corrupt"
    assert not store.has("k1")


def test_malformed_database_resets_and_recomputes(store):
    store.put("k1", KIND_CAMPAIGN, {"a": 1})
    store.close()
    # Overwrite the database header: every subsequent read hits
    # "file is not a database".
    store.path.write_bytes(b"garbage" * 64)
    for sidecar in ("-wal", "-shm"):
        try:
            (store.path.parent / (store.path.name + sidecar)).unlink()
        except OSError:
            pass
    with obs.tracing() as recorder:
        payload, status = store.fetch("k1", KIND_CAMPAIGN)
    assert payload is None and status == "corrupt"
    assert recorder.counters.get("store.corrupt") == 1
    # The reset leaves a working (empty) store behind.
    store.put("k2", KIND_CAMPAIGN, {"b": 2})
    assert store.get("k2", KIND_CAMPAIGN) == {"b": 2}
    assert store.get("k1", KIND_CAMPAIGN) is None


def test_unopenable_database_path_is_a_miss(tmp_path):
    path = tmp_path / DEFAULT_STORE_FILENAME
    path.mkdir()  # sqlite cannot open a directory
    store = ResultStore(path)
    payload, status = store.fetch("k", KIND_CAMPAIGN)
    assert payload is None and status == "miss"


def test_put_many_is_transactional_and_counted(store):
    entries = [
        (f"k{i}", KIND_CAMPAIGN if i % 2 else KIND_SWEEP, {"i": i})
        for i in range(10)
    ]
    with obs.tracing() as recorder:
        written = store.put_many(entries)
    assert written == 10
    assert recorder.counters.get("store.put") == 10
    assert store.entry_count() == 10
    assert store.entry_count(KIND_CAMPAIGN) == 5
    assert store.entry_count(KIND_SWEEP) == 5


def test_put_many_rejects_unknown_kind(store):
    with pytest.raises(ConfigurationError):
        store.put_many([("k", "bogus", {})])


def test_put_many_if_absent_never_clobbers(store):
    store.put("k1", KIND_CAMPAIGN, {"authority": "store"})
    added = store.put_many_if_absent([
        ("k1", KIND_CAMPAIGN, {"authority": "legacy"}),
        ("k2", KIND_ADAPTIVE, {"fresh": True}),
    ])
    assert added == 1
    assert store.get("k1", KIND_CAMPAIGN) == {"authority": "store"}
    assert store.get("k2", KIND_ADAPTIVE) == {"fresh": True}


def test_keys_filter_by_kind(store):
    store.put("c", KIND_CAMPAIGN, {})
    store.put("s", KIND_SWEEP, {})
    assert store.keys() == ["c", "s"]
    assert store.keys(KIND_SWEEP) == ["s"]


def test_stats_shape(store):
    store.put("c", KIND_CAMPAIGN, {"x": 1})
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["per_kind"] == {KIND_CAMPAIGN: 1}
    assert stats["payload_bytes"] == len(encode_payload({"x": 1}))
    assert stats["path"] == str(store.path)


def test_encode_payload_is_canonical():
    assert encode_payload({"b": 1, "a": 2}) == b'{"a":2,"b":1}'
    blob = encode_payload({"a": [1.5, None, "x"]})
    assert json.loads(blob) == {"a": [1.5, None, "x"]}


def test_resolve_store_path_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv("VRD_STORE_PATH", raising=False)
    monkeypatch.delenv("VRD_CACHE_DIR", raising=False)
    assert resolve_store_path() == (
        __import__("pathlib").Path(".vrd-cache") / DEFAULT_STORE_FILENAME
    )
    monkeypatch.setenv("VRD_CACHE_DIR", str(tmp_path / "dir"))
    assert resolve_store_path() == tmp_path / "dir" / DEFAULT_STORE_FILENAME
    monkeypatch.setenv("VRD_STORE_PATH", str(tmp_path / "db.sqlite"))
    assert resolve_store_path() == tmp_path / "db.sqlite"
    # Explicit arguments outrank the environment entirely.
    assert resolve_store_path(cache_dir=tmp_path / "x") == (
        tmp_path / "x" / DEFAULT_STORE_FILENAME
    )
    assert resolve_store_path(store_path=tmp_path / "y.db") == (
        tmp_path / "y.db"
    )
    # Empty values disable storage.
    monkeypatch.setenv("VRD_STORE_PATH", "")
    assert resolve_store_path() is None
    assert ResultStore.resolve() is None
    monkeypatch.delenv("VRD_STORE_PATH")
    monkeypatch.setenv("VRD_CACHE_DIR", " ")
    assert resolve_store_path() is None


def test_threaded_connections_are_isolated(store):
    """Each thread gets its own sqlite connection; concurrent readers and
    a writer on one store object must not interfere."""
    import threading

    store.put("k", KIND_CAMPAIGN, {"v": 0})
    errors = []

    def reader():
        try:
            for _ in range(50):
                payload = store.get("k", KIND_CAMPAIGN)
                assert payload is not None and "v" in payload
        except Exception as error:  # noqa: BLE001 — surfaced to the test
            errors.append(error)

    def writer():
        try:
            for i in range(50):
                store.put("k", KIND_CAMPAIGN, {"v": i})
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


def test_stats_protocol_breakdown(store):
    store.put("c1", KIND_CAMPAIGN, {"module_id": "M1", "observations": []})
    store.put("c2", KIND_CAMPAIGN, {"module_id": "D0", "observations": []})
    store.put("sw", KIND_SWEEP, {"mixes": []})
    store.put("fl", KIND_FLEET, {"spec": {"n_modules": 4}})
    store.put(
        "fl5", KIND_FLEET, {"spec": {"n_modules": 4, "protocols": ["DDR5"]}}
    )
    store.put("??", KIND_CAMPAIGN, {"module_id": "NOT-A-DEVICE"})
    breakdown = store.stats()["per_protocol"]
    # M1 is DDR4; D0 is DDR5 and the memsim sweep substrate is DDR5 too;
    # fleet checkpoints are labelled by their sampling pool.
    assert breakdown == {
        "DDR4": 1,
        "DDR4+HBM2": 1,
        "DDR5": 3,
        "unknown": 1,
    }
