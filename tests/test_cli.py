"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_devices(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "M1" in out and "Chip0" in out
    assert "Table 1" in out


def test_measure(capsys):
    assert main(["measure", "M1", "--row", "64", "-n", "200"]) == 0
    out = capsys.readouterr().out
    assert "min appears" in out
    assert "max/min ratio" in out


def test_measure_with_voltage(capsys):
    assert main([
        "measure", "M1", "--row", "64", "-n", "100", "--voltage", "2.2",
    ]) == 0
    assert "2.2V" in capsys.readouterr().out


def test_profile(capsys):
    assert main(["profile", "H2", "--rows-per-block", "1", "-n", "200"]) == 0
    out = capsys.readouterr().out
    assert "VRD profile" in out
    assert "median P(find min)" in out


def test_profile_saves_campaign(capsys, tmp_path):
    from repro.core.store import load_campaign

    path = tmp_path / "h2.json"
    assert main([
        "profile", "H2", "--rows-per-block", "1", "-n", "100",
        "--output", str(path),
    ]) == 0
    assert "saved" in capsys.readouterr().out
    restored = load_campaign(path)
    assert restored.module_id == "H2"
    assert len(restored) > 0


def test_analyze_saved_campaign(capsys, tmp_path):
    path = tmp_path / "h2.json"
    assert main([
        "profile", "H2", "--rows-per-block", "1", "-n", "100",
        "--output", str(path),
    ]) == 0
    capsys.readouterr()
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "minimum-RDT identification" in out
    assert "CV S-curve" in out


def test_verify(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "5/5 checks passed" in out


def test_table3_default_and_custom(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "7.63e-05" in out  # the paper's 5 / 65536 BER
    assert main(["table3", "--ber", "1e-3"]) == 0
    assert "1.00e-03" in capsys.readouterr().out


def test_testtime(capsys):
    assert main(["testtime"]) == 0
    out = capsys.readouterr().out
    assert "rowhammer_100k" in out


def test_attack_exit_codes(capsys):
    # Graphene with margin: survives => exit 0.
    assert main([
        "attack", "M1", "--kind", "graphene", "--row", "80",
        "--profile-n", "5", "--margin", "0.1", "--windows", "200",
    ]) == 0
    assert "survived" in capsys.readouterr().out
    # No mitigation: flips => exit 1.
    assert main([
        "attack", "M1", "--kind", "none", "--row", "80", "--windows", "5",
    ]) == 1
    assert "FLIPPED" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
