"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_devices(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "M1" in out and "Chip0" in out
    assert "Table 1" in out


def test_measure(capsys):
    assert main(["measure", "M1", "--row", "64", "-n", "200"]) == 0
    out = capsys.readouterr().out
    assert "min appears" in out
    assert "max/min ratio" in out


def test_measure_with_voltage(capsys):
    assert main([
        "measure", "M1", "--row", "64", "-n", "100", "--voltage", "2.2",
    ]) == 0
    assert "2.2V" in capsys.readouterr().out


def test_profile(capsys):
    assert main(["profile", "H2", "--rows-per-block", "1", "-n", "200"]) == 0
    out = capsys.readouterr().out
    assert "VRD profile" in out
    assert "median P(find min)" in out


def test_profile_saves_campaign(capsys, tmp_path):
    from repro.core.store import load_campaign

    path = tmp_path / "h2.json"
    assert main([
        "profile", "H2", "--rows-per-block", "1", "-n", "100",
        "--output", str(path),
    ]) == 0
    assert "saved" in capsys.readouterr().out
    restored = load_campaign(path)
    assert restored.module_id == "H2"
    assert len(restored) > 0


def test_analyze_saved_campaign(capsys, tmp_path):
    path = tmp_path / "h2.json"
    assert main([
        "profile", "H2", "--rows-per-block", "1", "-n", "100",
        "--output", str(path),
    ]) == 0
    capsys.readouterr()
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "minimum-RDT identification" in out
    assert "CV S-curve" in out


def test_verify(capsys):
    assert main(["verify"]) == 0
    out = capsys.readouterr().out
    assert "5/5 checks passed" in out


def test_table3_default_and_custom(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "7.63e-05" in out  # the paper's 5 / 65536 BER
    assert main(["table3", "--ber", "1e-3"]) == 0
    assert "1.00e-03" in capsys.readouterr().out


def test_testtime(capsys):
    assert main(["testtime"]) == 0
    out = capsys.readouterr().out
    assert "rowhammer_100k" in out


def test_attack_exit_codes(capsys):
    # Graphene with margin: survives => exit 0.
    assert main([
        "attack", "M1", "--kind", "graphene", "--row", "80",
        "--profile-n", "5", "--margin", "0.1", "--windows", "200",
    ]) == 0
    assert "survived" in capsys.readouterr().out
    # No mitigation: flips => exit 1.
    assert main([
        "attack", "M1", "--kind", "none", "--row", "80", "--windows", "5",
    ]) == 1
    assert "FLIPPED" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_measure_adaptive(capsys):
    assert main([
        "measure", "M1", "--row", "64", "-n", "200", "--adaptive",
    ]) == 0
    out = capsys.readouterr().out
    assert "adaptive RDT estimate" in out
    assert "99% CI" in out
    assert "x fewer" in out


def test_measure_adaptive_budget_and_confidence(capsys):
    assert main([
        "measure", "M1", "--row", "64", "-n", "200", "--adaptive",
        "--budget", "50", "--confidence", "0.9", "--precision", "0.1",
    ]) == 0
    assert "90% CI" in capsys.readouterr().out


def test_profile_adaptive(capsys, tmp_path):
    import json

    out_path = tmp_path / "adaptive.json"
    assert main([
        "profile", "M1", "--rows-per-block", "1", "-n", "100",
        "--adaptive", "--no-cache", "--output", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "adaptive VRD profile" in out
    assert "trials spent" in out
    assert "converged" in out
    payload = json.loads(out_path.read_text())
    assert payload["kind"] == "adaptive-campaign"
    assert payload["estimates"]


def test_profile_adaptive_deterministic_across_jobs(capsys, tmp_path):
    outputs = []
    for jobs in ("1", "2"):
        assert main([
            "profile", "M1", "--rows-per-block", "1", "-n", "100",
            "--adaptive", "--no-cache", "--jobs", jobs,
        ]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def _write_bench_records(root):
    import json

    (root / "BENCH_alpha.json").write_text(json.dumps({
        "speedup": 4.2, "cache_hit_speedup": 900.0,
        "date": "2026-08-01", "commit": "abc1234",
    }))
    (root / "BENCH_beta.json").write_text(json.dumps({
        "trial_reduction": 35.0, "date": "2026-08-02", "commit": "def5678",
    }))


def test_bench_golden_output(capsys, tmp_path):
    """Exact golden output: the trajectory table's selection of headline
    metrics, formatting, and ordering are all part of the contract."""
    _write_bench_records(tmp_path)
    assert main(["bench", "--dir", str(tmp_path)]) == 0
    golden = (
        "perf trajectory (2 benchmarks)\n"
        "bench  metric           speedup  date        commit \n"
        "-----  ---------------  -------  ----------  -------\n"
        "alpha  speedup          4.2x     2026-08-01  abc1234\n"
        "beta   trial_reduction  35x      2026-08-02  def5678\n"
    )
    assert capsys.readouterr().out == golden


def test_bench_json_output(capsys, tmp_path):
    import json

    _write_bench_records(tmp_path)
    assert main(["bench", "--dir", str(tmp_path), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert [record["bench"] for record in records] == ["alpha", "beta"]
    # The headline skips cache_hit_speedup but keeps it in all_metrics.
    assert records[0]["metric"] == "speedup"
    assert records[0]["all_metrics"]["cache_hit_speedup"] == 900.0


def test_bench_skips_corrupt_records(capsys, tmp_path):
    _write_bench_records(tmp_path)
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    assert main(["bench", "--dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "broken" not in captured.out
    assert "skipping BENCH_broken.json" in captured.err


def test_bench_empty_dir_fails(capsys, tmp_path):
    assert main(["bench", "--dir", str(tmp_path)]) == 1
    assert "no BENCH_*.json" in capsys.readouterr().out


def test_bench_repo_records(capsys):
    """The repo's own committed BENCH_*.json files aggregate cleanly."""
    assert main(["bench", "--dir", "."]) == 0
    out = capsys.readouterr().out
    assert "adaptive" in out
    assert "engine" in out
    assert "fleet" in out


def test_bench_auto_discovers_new_records(capsys, tmp_path):
    """Any newly dropped BENCH_*.json joins the trajectory unchanged —
    the fleet benchmark rides the same auto-discovery as every other."""
    import json

    _write_bench_records(tmp_path)
    (tmp_path / "BENCH_fleet.json").write_text(json.dumps({
        "speedup": 9.5, "rss_10k_mb": 72.0,
        "date": "2026-08-08", "commit": "0123abc",
    }))
    assert main(["bench", "--dir", str(tmp_path), "--json"]) == 0
    records = json.loads(capsys.readouterr().out)
    assert [record["bench"] for record in records] == [
        "alpha", "beta", "fleet",
    ]
    fleet = records[-1]
    assert fleet["metric"] == "speedup"
    assert fleet["value"] == 9.5


FLEET_ARGS = [
    "fleet", "-m", "6", "--rows", "2", "-n", "6", "--shard-size", "2",
    "--seed", "77",
]


def test_fleet_command_tables_and_json(capsys, tmp_path):
    import json

    store = str(tmp_path / "fleet.sqlite")
    assert main(FLEET_ARGS + ["--store", store, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "fleet guardband failure" in out
    assert "per-region guardband failures" in out
    assert "ECC undetectable escape" in out

    output = tmp_path / "fleet.json"
    assert main(FLEET_ARGS + [
        "--store", store, "--quiet", "--json", "-o", str(output),
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.loads(output.read_text())
    assert payload["resumed_shards"] == 3  # second run rode checkpoints
    assert payload["summary"]["modules"] == 6


def test_fleet_command_interrupt_then_resume(capsys, tmp_path):
    import json

    store = str(tmp_path / "fleet.sqlite")
    assert main(FLEET_ARGS + [
        "--store", store, "--quiet", "--fail-after-shards", "1",
    ]) == 3
    assert "interrupted" in capsys.readouterr().err
    assert main(FLEET_ARGS + ["--store", store, "--json"]) == 0
    captured = capsys.readouterr()
    resumed = json.loads(captured.out)
    assert resumed["resumed_shards"] == 1
    assert "resumed" in captured.err

    clean = str(tmp_path / "clean.sqlite")
    assert main(FLEET_ARGS + ["--store", clean, "--quiet", "--json"]) == 0
    uninterrupted = json.loads(capsys.readouterr().out)
    for payload in (resumed, uninterrupted):
        payload.pop("computed_shards")
        payload.pop("resumed_shards")
    assert resumed == uninterrupted


def test_store_prune_command(capsys, tmp_path):
    store = str(tmp_path / "results.sqlite")
    assert main(FLEET_ARGS + ["--store", store, "--quiet"]) == 0
    capsys.readouterr()

    # Refuses a filterless wipe.
    assert main(["store", "prune", "--store", store]) == 1
    assert "refusing" in capsys.readouterr().err

    assert main(["store", "prune", "--store", store, "--kind", "fleet",
                 "--older-than", "1"]) == 0
    assert "pruned 0 fleet entries" in capsys.readouterr().out

    assert main(["store", "prune", "--store", store, "--kind", "fleet"]) == 0
    assert "pruned 3 fleet entries" in capsys.readouterr().out
    assert main(["store", "stats", "--store", store]) == 0
    assert "fleet" not in capsys.readouterr().out
