"""The exception hierarchy is catchable at the root."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.AddressError,
        errors.TimingViolationError,
        errors.CommandSequenceError,
        errors.ProgramError,
        errors.MeasurementError,
        errors.EccError,
        errors.CatalogError,
        errors.SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")
