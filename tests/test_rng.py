"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import child_seed, derive


def test_same_path_same_stream():
    a = derive(42, "module", "M1", "row", 7)
    b = derive(42, "module", "M1", "row", 7)
    assert np.array_equal(a.integers(0, 2**32, 16), b.integers(0, 2**32, 16))


def test_different_paths_differ():
    a = derive(42, "module", "M1", "row", 7)
    b = derive(42, "module", "M1", "row", 8)
    assert not np.array_equal(a.integers(0, 2**32, 16), b.integers(0, 2**32, 16))


def test_different_seeds_differ():
    assert child_seed(1, "x") != child_seed(2, "x")


def test_path_elements_not_concatenation_ambiguous():
    # ("ab", "c") must differ from ("a", "bc").
    assert child_seed(0, "ab", "c") != child_seed(0, "a", "bc")


def test_int_and_str_elements_distinct():
    # The encoding stringifies, so 1 and "1" collide intentionally is NOT
    # desired; they are the same string, accept documented behavior:
    assert child_seed(0, 1) == child_seed(0, "1")


def test_rejects_non_str_int_path():
    with pytest.raises(TypeError):
        child_seed(0, 3.5)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        child_seed(0, True)  # type: ignore[arg-type]


@given(st.integers(min_value=-(2**62), max_value=2**62), st.text(max_size=20))
def test_child_seed_is_64_bit(seed, name):
    value = child_seed(seed, name)
    assert 0 <= value < 2**64
