"""Tests for unit conversions."""

from repro import units


def test_roundtrips():
    assert units.ns_to_us(units.us(7.8)) == 7.8
    assert units.ns_to_ms(units.ms(64.0)) == 64.0
    assert units.ns_to_seconds(units.seconds(2.5)) == 2.5


def test_derived_scales():
    assert units.ms(1) == 1_000_000.0
    assert units.seconds(1) == 1_000_000_000.0
    assert units.ns_to_hours(units.seconds(3600)) == 1.0
    assert units.ns_to_days(units.seconds(86_400)) == 1.0


def test_sizes():
    assert units.MIB == 1024 * units.KIB
    assert units.GIB == 1024 * units.MIB
