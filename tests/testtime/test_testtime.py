"""Tests for Appendix A schedules, energy, and sweeps."""

import pytest

from repro.dram.timing import DDR5_8800
from repro.errors import ConfigurationError
from repro.testtime import (
    EnergyModel,
    TestTimeEstimator,
    multi_bank_schedule,
    single_bank_schedule,
)
from repro.testtime.estimator import ROWPRESS_T_AGG_ON


class TestSingleBankSchedule:
    def test_table4_command_counts(self):
        schedule = single_bank_schedule(hammer_count=10, t_agg_on=32.0)
        counts = schedule.command_counts()
        # Three row initializations + readback ACT (Table 4).
        assert counts["ACT"] == 4
        assert counts["WRITE"] == 3 * 128
        assert counts["READ"] == 128
        assert counts["ACT+PRE"] == 2 * 10

    def test_duration_scales_with_hammers(self):
        t = DDR5_8800
        base = single_bank_schedule(0, t.tRAS).total_ns
        hammered = single_bank_schedule(1000, t.tRAS).total_ns
        assert hammered - base == pytest.approx(2000 * (t.tRAS + t.tRP))

    def test_rowpress_dominated_by_on_time(self):
        press = single_bank_schedule(1000, ROWPRESS_T_AGG_ON).total_ns
        hammer = single_bank_schedule(1000, DDR5_8800.tRAS).total_ns
        assert press > hammer * 50

    def test_as_table_shapes(self):
        rows = single_bank_schedule(5, 32.0).as_table()
        assert all(len(row) == 4 for row in rows)

    def test_negative_hammer_rejected(self):
        with pytest.raises(ConfigurationError):
            single_bank_schedule(-1, 32.0)


class TestMultiBankSchedule:
    def test_table5_write_counts(self):
        schedule = multi_bank_schedule(10, 32.0, n_banks=16)
        counts = schedule.command_counts()
        # Table 5: 16 ACTs, 2032 tCCD_S-paced writes plus one tWR-paced
        # settling write per initialized row address.
        assert counts["WRITE"] == 3 * (16 * 127 + 1)
        assert counts["ACT"] == 3 * 16 + 16
        assert counts["ACT+PRE"] == 2 * 10 * 16

    def test_bank_overlap_saves_time(self):
        single = single_bank_schedule(1000, 32.0).total_ns
        multi = multi_bank_schedule(1000, 32.0, n_banks=16).total_ns
        # 16 measurements in far less than 16x the time.
        assert multi < single * 4

    def test_rowpress_hides_bank_activations(self):
        # With tAggOn >> tRRD_S * banks, the hammer phase costs the same
        # per round regardless of bank count.
        a = multi_bank_schedule(100, ROWPRESS_T_AGG_ON, n_banks=1)
        b = multi_bank_schedule(100, ROWPRESS_T_AGG_ON, n_banks=16)
        hammer_a = [p for p in a.phases if p.command == "ACT+PRE"][0]
        hammer_b = [p for p in b.phases if p.command == "ACT+PRE"][0]
        assert hammer_a.duration_ns == pytest.approx(hammer_b.duration_ns)

    def test_invalid_banks(self):
        with pytest.raises(ConfigurationError):
            multi_bank_schedule(10, 32.0, n_banks=0)


class TestEnergy:
    def test_energy_positive_and_scales(self):
        model = EnergyModel()
        small = model.schedule_energy_j(single_bank_schedule(100, 32.0))
        large = model.schedule_energy_j(single_bank_schedule(10_000, 32.0))
        assert 0 < small < large

    def test_row_open_premium(self):
        model = EnergyModel()
        schedule = single_bank_schedule(100, 32.0)
        assert model.schedule_energy_j(schedule, row_open_ns=1e6) > (
            model.schedule_energy_j(schedule)
        )

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(act_pre_nj=-1.0)


class TestEstimator:
    def test_headline_scenarios_near_paper(self):
        """Appendix A summary: ~61 days / 13 MJ for RowHammer 100K, ~15 h /
        128 kJ for 1K. (RowPress runs ~2x the paper's quote because we
        charge each aggressor its own tAggOn; see EXPERIMENTS.md.)"""
        summary = TestTimeEstimator().summary()
        days, joules = summary["rowhammer_100k"]
        assert days == pytest.approx(61, rel=0.15)
        assert joules == pytest.approx(13e6, rel=0.25)
        days_1k, joules_1k = summary["rowhammer_1k"]
        assert days_1k * 24 == pytest.approx(15, rel=0.15)
        assert joules_1k == pytest.approx(128e3, rel=0.25)
        # RowPress scales by roughly tAggOn / (tRAS + tRP).
        assert summary["rowpress_100k"][0] > 100 * days

    def test_linear_scaling_in_measurements(self):
        est = TestTimeEstimator()
        one = est.measurement_cost(1000, 32.0, n_measurements=1)
        thousand = est.measurement_cost(1000, 32.0, n_measurements=1000)
        assert thousand.time_ns == pytest.approx(one.time_ns * 1000)
        assert thousand.energy_j == pytest.approx(one.energy_j * 1000)

    def test_bank_parallelism_reduces_row_time(self):
        est = TestTimeEstimator()
        serial = est.measurement_cost(1000, 32.0, n_banks=1, n_rows=1024)
        parallel = est.measurement_cost(1000, 32.0, n_banks=16, n_rows=1024)
        assert parallel.time_ns < serial.time_ns

    def test_sweeps_cover_axes(self):
        est = TestTimeEstimator()
        points = est.single_measurement_sweep(32.0)
        assert len(points) == 25
        rows = est.row_sweep(32.0)
        assert len(rows) == 25
        campaign = est.campaign_sweep(32.0, n_measurements=1000)
        assert len(campaign) == 25

    def test_invalid_rows(self):
        with pytest.raises(ConfigurationError):
            TestTimeEstimator().measurement_cost(100, 32.0, n_rows=0)

    def test_invalid_measurements(self):
        with pytest.raises(ConfigurationError):
            TestTimeEstimator().measurement_cost(100, 32.0, n_measurements=0)

    def test_single_bank_is_table4_multi_bank_is_table5(self):
        """The estimator must price n_banks=1 off the Table 4 schedule and
        n_banks=16 off the Table 5 schedule, not scale one into the other."""
        est = TestTimeEstimator()
        single = est.measurement_cost(1000, 32.0, n_banks=1)
        multi = est.measurement_cost(1000, 32.0, n_banks=16)
        assert single.time_ns == pytest.approx(
            single_bank_schedule(1000, 32.0).total_ns
        )
        assert multi.time_ns == pytest.approx(
            multi_bank_schedule(1000, 32.0, n_banks=16).total_ns
        )
        # One 16-bank schedule covers 16 rows: per-row it must beat 16
        # single-bank schedules but cost more than one.
        assert single.time_ns < multi.time_ns < 16 * single.time_ns

    def test_row_rounding_up_to_bank_multiples(self):
        est = TestTimeEstimator()
        # 17 rows over 16 banks need 2 sequential rounds, same as 32 rows.
        a = est.measurement_cost(1000, 32.0, n_banks=16, n_rows=17)
        b = est.measurement_cost(1000, 32.0, n_banks=16, n_rows=32)
        assert a.time_ns == pytest.approx(b.time_ns)


class TestAdaptiveCost:
    def test_total_trials_match_measurement_cost(self):
        """Pricing is per trial: an adaptive campaign whose trials sum to
        ``n_rows * n_measurements`` costs exactly the exhaustive campaign
        of that shape."""
        est = TestTimeEstimator()
        adaptive = est.adaptive_cost(1000, 32.0, [250, 250, 250, 250])
        exhaustive = est.measurement_cost(
            1000, 32.0, n_rows=4, n_measurements=250
        )
        assert adaptive.time_ns == pytest.approx(exhaustive.time_ns)
        assert adaptive.energy_j == pytest.approx(exhaustive.energy_j)

    def test_zero_trial_rows_are_free(self):
        est = TestTimeEstimator()
        with_zeros = est.adaptive_cost(1000, 32.0, [40, 0, 0, 25])
        without = est.adaptive_cost(1000, 32.0, [40, 25])
        assert with_zeros.time_ns == pytest.approx(without.time_ns)
        assert with_zeros.n_rows == 4
        assert with_zeros.n_measurements == 65

    def test_all_rows_starved_costs_nothing(self):
        point = TestTimeEstimator().adaptive_cost(1000, 32.0, [0, 0, 0])
        assert point.time_ns == 0.0
        assert point.energy_j == 0.0

    def test_bank_parallelism_packs_trials(self):
        est = TestTimeEstimator()
        serial = est.adaptive_cost(1000, 32.0, [10] * 16, n_banks=1)
        packed = est.adaptive_cost(1000, 32.0, [10] * 16, n_banks=16)
        # 160 trials over 16 banks: 10 rounds of the (longer) multi-bank
        # schedule instead of 160 single-bank rounds.
        assert packed.time_ns < serial.time_ns

    def test_adaptive_prices_real_run_below_exhaustive(self, module):
        from repro.core import AdaptiveConfig, AdaptiveScheduler
        from repro.core.config import TestConfig
        from repro.core.patterns import CHECKERED0

        config = TestConfig(CHECKERED0, t_agg_on_ns=module.timing.tRAS)
        n_max = 100
        result = AdaptiveScheduler(
            module, [config], AdaptiveConfig(max_measurements=n_max)
        ).run([3, 17, 40])
        est = TestTimeEstimator()
        adaptive = est.adaptive_cost(
            1000, 32.0, result.trials_per_row(), n_banks=16
        )
        # The exhaustive campaign sweeps the grid linearly: its trial
        # count is each row's average sweep cost times the full series.
        exhaustive_trials = result.exhaustive_trials_baseline
        exhaustive = est.adaptive_cost(
            1000, 32.0, [exhaustive_trials], n_banks=16
        )
        assert adaptive.time_ns < exhaustive.time_ns / 10

    def test_invalid_inputs(self):
        est = TestTimeEstimator()
        with pytest.raises(ConfigurationError):
            est.adaptive_cost(1000, 32.0, [-1])
        with pytest.raises(ConfigurationError):
            est.adaptive_cost(1000, 32.0, [5], n_banks=0)
